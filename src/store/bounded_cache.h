#pragma once
// store::BoundedCache<K, V>: the one capacity-bounded, thread-safe cache
// template every per-key cache in the system sits on (ffLDL trees, NTT
// keys, netlists, recipes). It exists because an unordered_map per cache is
// wrong at millions of churning tenants: memory must be bounded, a cold
// scan must not flush the hot working set, and concurrent misses on one
// key must coalesce into one build.
//
// Admission/eviction is simplified 2Q: a new entry lands in a
// *probationary* FIFO; a second reference promotes it to the *protected*
// LRU. Under budget pressure the probationary FIFO is drained first, so a
// one-shot sweep of cold tenants churns through probation and never
// displaces the protected working set. Budgets are cost-aware: a cap on
// entries AND on approximate bytes (an ffLDL tree is ~100x a recipe), with
// either cap 0 meaning unbounded — the default, which makes the template a
// drop-in for the unbounded maps it replaces.
//
// Build-on-miss is single-flight: the first miss for a key runs the
// builder outside the lock, later arrivals for the same key wait on a
// shared future (misses on other keys proceed in parallel). A builder that
// THROWS is never cached — the in-flight entry is removed before the
// exception propagates, so the next request retries instead of replaying a
// stale failure forever. The builder reports whether it recomputed the
// value or warm-started it from a persistent store (store::KvStore), which
// is what the warm_starts counter in obs::CacheStats tracks.
//
// get_or_build returns a Pinned handle: while any handle for an entry is
// alive the entry cannot be evicted, so a sign_many/verify_many batch
// running against a tree/key never has it swept out from under its feet
// mid-batch (the shared_ptr would keep the object alive anyway, but the
// memory budget would lie and the next request would rebuild state that is
// demonstrably hot). A fully-pinned cache may transiently exceed its
// budget; eviction resumes as pins release.

#include <cstddef>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "obs/metric.h"

namespace cgs::store {

/// Capacity budget for one cache. 0 = unbounded on that axis; both 0 (the
/// default) reproduces the legacy unbounded-map behavior.
struct CacheBudget {
  std::size_t max_entries = 0;
  std::size_t max_bytes = 0;
  bool bounded() const { return max_entries != 0 || max_bytes != 0; }
};

template <typename K, typename V, typename Hash = std::hash<K>>
class BoundedCache {
 public:
  /// Where a get_or_build() result came from: memory, a persistent-store
  /// decode, or a full recompute.
  enum class Outcome { kHit, kWarmStart, kBuilt };

  /// What a builder returns: the value, its approximate resident cost
  /// (counted against max_bytes; 0 is allowed under an entries-only
  /// budget), and whether it was decoded from a persistent store rather
  /// than recomputed.
  struct Built {
    std::shared_ptr<const V> value;
    std::size_t bytes = 0;
    bool warm_start = false;
  };

  /// A pinned reference to a cache entry. While alive, the entry is
  /// exempt from eviction; destruction unpins (and resumes any eviction
  /// the pin was blocking). Outlives eviction/clear safely — the value
  /// stays valid through the shared_ptr even if the entry is gone.
  ///
  /// Lifetime contract: a Pinned handle holds a raw pointer to its cache
  /// and MUST NOT outlive the BoundedCache that issued it — destroying
  /// (or releasing) a handle after the cache is gone dereferences a
  /// dangling pointer. Every in-tree holder is scoped to one batch call
  /// inside a service that owns its cache, which satisfies this by
  /// construction; callers that stash handles must tie their lifetime to
  /// the owning service's.
  class Pinned {
   public:
    Pinned() = default;
    Pinned(Pinned&& o) noexcept { *this = std::move(o); }
    Pinned& operator=(Pinned&& o) noexcept {
      if (this != &o) {
        release();
        cache_ = std::exchange(o.cache_, nullptr);
        key_ = std::move(o.key_);
        gen_ = o.gen_;
        value_ = std::move(o.value_);
        outcome_ = o.outcome_;
      }
      return *this;
    }
    Pinned(const Pinned&) = delete;
    Pinned& operator=(const Pinned&) = delete;
    ~Pinned() { release(); }

    const std::shared_ptr<const V>& value() const { return value_; }
    const V& operator*() const { return *value_; }
    const V* operator->() const { return value_.get(); }
    explicit operator bool() const { return value_ != nullptr; }
    Outcome outcome() const { return outcome_; }

   private:
    friend class BoundedCache;
    Pinned(BoundedCache* cache, K key, std::uint64_t gen,
           std::shared_ptr<const V> value, Outcome outcome)
        : cache_(cache),
          key_(std::move(key)),
          gen_(gen),
          value_(std::move(value)),
          outcome_(outcome) {}

    void release() {
      if (cache_) cache_->unpin(key_, gen_);
      cache_ = nullptr;
      value_.reset();
    }

    BoundedCache* cache_ = nullptr;  // null: handle shares the value unpinned
    K key_{};
    std::uint64_t gen_ = 0;
    std::shared_ptr<const V> value_;
    Outcome outcome_ = Outcome::kHit;
  };

  explicit BoundedCache(CacheBudget budget = {}) : budget_(budget) {}
  BoundedCache(const BoundedCache&) = delete;
  BoundedCache& operator=(const BoundedCache&) = delete;

  /// The entry for `key`, built on first contact. `build` is a callable
  /// returning Built; it runs outside the cache lock, concurrent misses on
  /// this key wait for it (single-flight), and a throw propagates to every
  /// waiter but is never cached. The returned handle pins the entry.
  template <typename Builder>
  Pinned get_or_build(const K& key, Builder&& build) {
    std::promise<Built> promise;
    std::shared_future<Built> future;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (auto it = map_.find(key); it != map_.end()) {
          Node& node = it->second;
          touch(node);
          ++node.pins;
          ++hits_;
          return Pinned(this, key, node.gen, node.value, Outcome::kHit);
        }
        auto fit = inflight_.find(key);
        if (fit == inflight_.end()) break;
        future = fit->second;
        lock.unlock();
        const Built shared = future.get();  // rethrows a build failure
        lock.lock();
        // The completer inserted the entry; pin it if it is still there.
        // (It may already have been evicted or cleared under a tiny budget
        // — then hand back the shared value unpinned, which is still a
        // memory hit: this call never ran a builder.)
        if (auto it = map_.find(key); it != map_.end()) {
          Node& node = it->second;
          touch(node);
          ++node.pins;
          ++hits_;
          return Pinned(this, key, node.gen, node.value, Outcome::kHit);
        }
        ++hits_;
        return Pinned(nullptr, key, 0, shared.value, Outcome::kHit);
      }
      future = promise.get_future().share();
      inflight_.emplace(key, future);
    }

    Built built;
    try {
      built = build();
      CGS_CHECK_MSG(built.value != nullptr,
                    "BoundedCache builder returned a null value");
    } catch (...) {
      {
        // A failed build must not poison the key: drop the in-flight
        // future so the NEXT request retries. Current waiters still see
        // this failure (they were concurrent with it).
        std::lock_guard<std::mutex> lock(mu_);
        inflight_.erase(key);
      }
      promise.set_exception(std::current_exception());
      throw;
    }

    const Outcome outcome =
        built.warm_start ? Outcome::kWarmStart : Outcome::kBuilt;
    std::shared_ptr<const V> value = built.value;
    std::uint64_t gen;
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(key);
      ++misses_;
      if (built.warm_start) ++warm_starts_;
      gen = insert_locked(key, built);
    }
    promise.set_value(std::move(built));
    return Pinned(this, key, gen, std::move(value), outcome);
  }

  /// The cached value without counting a hit, promoting, or building.
  std::shared_ptr<const V> peek(const K& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : it->second.value;
  }

  /// Drop one entry (pinned entries are dropped too — the pins then
  /// outlive the entry harmlessly). Returns whether it was present.
  bool erase(const K& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    remove_locked(it, /*count_eviction=*/false);
    return true;
  }

  /// Drop every entry (disk state untouched; outstanding pins become
  /// no-ops via their generation stamps).
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    probation_.clear();
    protected_.clear();
    bytes_ = 0;
  }

  obs::CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    obs::CacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.entries = map_.size();
    s.evictions = evictions_;
    s.warm_starts = warm_starts_;
    s.bytes = bytes_;
    return s;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }
  std::size_t bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }
  const CacheBudget& budget() const { return budget_; }

 private:
  struct Node {
    std::shared_ptr<const V> value;
    std::size_t bytes = 0;
    std::uint32_t pins = 0;
    std::uint64_t gen = 0;         // pin tokens bind to this, not the key
    bool in_protected = false;
    typename std::list<K>::iterator pos;
  };
  using Map = std::unordered_map<K, Node, Hash>;

  /// Second reference: promote probation -> protected; refresh protected
  /// recency. (Probation itself is FIFO — no reordering on first touch.)
  void touch(Node& node) {
    if (node.in_protected) {
      protected_.splice(protected_.end(), protected_, node.pos);
    } else {
      protected_.splice(protected_.end(), probation_, node.pos);
      node.in_protected = true;
    }
    node.pos = std::prev(protected_.end());
  }

  std::uint64_t insert_locked(const K& key, const Built& built) {
    Node node;
    node.value = built.value;
    node.bytes = built.bytes;
    node.pins = 1;  // the handle get_or_build returns
    node.gen = ++gen_;
    probation_.push_back(key);
    node.pos = std::prev(probation_.end());
    bytes_ += node.bytes;
    const std::uint64_t gen = node.gen;
    map_.emplace(key, std::move(node));
    evict_locked();
    return gen;
  }

  void remove_locked(typename Map::iterator it, bool count_eviction) {
    Node& node = it->second;
    bytes_ -= node.bytes;
    (node.in_protected ? protected_ : probation_).erase(node.pos);
    if (count_eviction) ++evictions_;
    map_.erase(it);
  }

  bool over_budget_locked() const {
    return (budget_.max_entries != 0 && map_.size() > budget_.max_entries) ||
           (budget_.max_bytes != 0 && bytes_ > budget_.max_bytes);
  }

  /// Oldest unpinned entry of `queue`, or map_.end().
  typename Map::iterator victim_in(const std::list<K>& queue) {
    for (const K& key : queue) {
      auto it = map_.find(key);
      if (it->second.pins == 0) return it;
    }
    return map_.end();
  }

  void evict_locked() {
    while (over_budget_locked()) {
      auto victim = victim_in(probation_);
      if (victim == map_.end()) victim = victim_in(protected_);
      if (victim == map_.end()) return;  // everything pinned: defer to unpin
      remove_locked(victim, /*count_eviction=*/true);
    }
  }

  void unpin(const K& key, std::uint64_t gen) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    // The generation stamp keeps a stale pin (entry evicted then re-built
    // under the same key) from corrupting the new entry's pin count.
    if (it == map_.end() || it->second.gen != gen) return;
    CGS_CHECK(it->second.pins > 0);
    --it->second.pins;
    // This pin may have been the only thing blocking eviction.
    if (it->second.pins == 0) evict_locked();
  }

  const CacheBudget budget_;
  mutable std::mutex mu_;
  Map map_;
  std::list<K> probation_;   // FIFO: front = next eviction candidate
  std::list<K> protected_;   // LRU: front = least recent
  std::unordered_map<K, std::shared_future<Built>, Hash> inflight_;
  std::size_t bytes_ = 0;
  std::uint64_t gen_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t warm_starts_ = 0;
};

}  // namespace cgs::store
