#include "store/kvstore.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <utility>

#include "common/check.h"
#include "serial/serial.h"

namespace cgs::store {

namespace {

// Frame header size (magic + version + tag + payload size + checksum) —
// the minimum bytes a record needs before its payload length is known.
constexpr std::uint64_t kHeaderBytes = 28;

std::vector<std::uint8_t> encode_record(std::string_view key, bool tombstone,
                                        std::span<const std::uint8_t> value) {
  serial::Writer w;
  w.str(std::string(key));
  w.boolean(tombstone);
  if (!tombstone) {
    w.u64(value.size());
    w.bytes(value);
  }
  return serial::wrap(serial::TypeTag::kKvRecord, w.take());
}

struct Record {
  std::string key;
  bool tombstone = false;
  std::vector<std::uint8_t> value;
};

Record decode_record(std::span<const std::uint8_t> frame) {
  serial::Reader r(serial::unwrap(frame, serial::TypeTag::kKvRecord));
  Record rec;
  rec.key = r.str();
  rec.tombstone = r.boolean();
  if (!rec.tombstone) {
    const std::uint64_t len = r.u64();
    if (len != r.remaining())
      throw serial::SerialError("kvstore: record value length mismatch");
    const auto bytes = r.bytes(len);
    rec.value.assign(bytes.begin(), bytes.end());
  }
  r.finish();
  return rec;
}

bool pread_exact(int fd, std::uint8_t* buf, std::uint64_t len,
                 std::uint64_t offset) {
  std::uint64_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, buf + done, len - done, offset + done);
    if (n <= 0) return false;
    done += static_cast<std::uint64_t>(n);
  }
  return true;
}

bool write_all(int fd, const std::uint8_t* buf, std::uint64_t len,
               std::uint64_t offset) {
  std::uint64_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fd, buf + done, len - done, offset + done);
    if (n < 0) return false;
    done += static_cast<std::uint64_t>(n);
  }
  return true;
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

KvStore::KvStore(KvStoreOptions options) : options_(std::move(options)) {
  CGS_CHECK_MSG(!options_.dir.empty(), "KvStore needs a directory");
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  CGS_CHECK_MSG(!ec, "KvStore: cannot create directory " + options_.dir);
  path_ = options_.dir + "/" + options_.filename;
  // 0600: the log persists secret signing state (ffLDL trees carry the
  // NTRU (f, g) polynomials) — it must never be readable by other users.
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0600);
  CGS_CHECK_MSG(fd_ >= 0, "KvStore: cannot open " + path_);
  // O_CREAT's mode only applies to new files: tighten a pre-existing log
  // that was created under a laxer umask or an older build.
  (void)::fchmod(fd_, 0600);
  std::lock_guard<std::mutex> lock(mu_);
  replay_locked();
}

KvStore::~KvStore() {
  if (fd_ >= 0) ::close(fd_);
}

// Forward scan of the whole log: every record revalidated (magic,
// version, tag, checksum) before it is applied; the first invalid byte
// marks the torn tail and everything from there is truncated away.
void KvStore::replay_locked() {
  struct ::stat st {};
  CGS_CHECK_MSG(::fstat(fd_, &st) == 0, "KvStore: fstat failed");
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  std::vector<std::uint8_t> log(file_size);
  if (file_size != 0 && !pread_exact(fd_, log.data(), file_size, 0)) {
    // Unreadable log: start over rather than serve garbage.
    log.clear();
  }

  index_.clear();
  live_bytes_ = 0;
  std::uint64_t off = 0;
  while (off + kHeaderBytes <= log.size()) {
    const std::span<const std::uint8_t> rest(log.data() + off,
                                             log.size() - off);
    std::uint64_t total = 0;
    try {
      serial::Reader header(rest.subspan(0, kHeaderBytes));
      if (header.u32() != serial::kMagic)
        throw serial::SerialError("kvstore: bad magic");
      if (header.u32() != serial::kFormatVersion)
        throw serial::SerialError("kvstore: version skew");
      if (header.u32() !=
          static_cast<std::uint32_t>(serial::TypeTag::kKvRecord))
        throw serial::SerialError("kvstore: foreign frame in log");
      const std::uint64_t payload = header.u64();
      total = kHeaderBytes + payload;
      if (payload > rest.size() - kHeaderBytes)
        throw serial::SerialError("kvstore: torn record");
      const Record rec = decode_record(rest.subspan(0, total));
      if (rec.tombstone) {
        if (auto it = index_.find(rec.key); it != index_.end()) {
          live_bytes_ -= it->second.size;
          index_.erase(it);
        }
      } else {
        auto [it, inserted] = index_.try_emplace(rec.key);
        if (!inserted) live_bytes_ -= it->second.size;
        it->second = Slot{off, total};
        live_bytes_ += total;
      }
    } catch (const serial::SerialError&) {
      break;  // torn tail (or bit rot) starts here
    }
    off += total;
  }

  if (off < log.size()) {
    stats_.truncated_bytes += log.size() - off;
    if (options_.events != nullptr)
      options_.events->emit(obs::EventKind::kTornTailRecovery,
                            log.size() - off, off, options_.filename);
    // Drop the invalid tail so the next append starts on a clean frame
    // boundary (a torn record would otherwise corrupt every later one).
    if (::ftruncate(fd_, static_cast<off_t>(off)) != 0) {
      // Cannot truncate: re-scan would hit the same tail; appending after
      // it would be unreadable. Safe fallback: treat the log as full and
      // rewrite it from the live set.
      end_ = off;
      compact_locked();
      return;
    }
  }
  end_ = off;
  stats_.file_bytes = end_;
  stats_.live_bytes = live_bytes_;
  stats_.entries = index_.size();
}

std::optional<std::vector<std::uint8_t>> KvStore::get(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.gets;
  const auto it = index_.find(std::string(key));
  if (it == index_.end()) return std::nullopt;
  std::vector<std::uint8_t> frame(it->second.size);
  if (!pread_exact(fd_, frame.data(), frame.size(), it->second.offset))
    return std::nullopt;
  try {
    Record rec = decode_record(frame);
    if (rec.key != key || rec.tombstone) return std::nullopt;
    ++stats_.hits;
    return std::move(rec.value);
  } catch (const serial::SerialError&) {
    // In-place bit rot since open: a miss, never an error.
    return std::nullopt;
  }
}

bool KvStore::put(std::string_view key, std::span<const std::uint8_t> value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.puts;
  if (!append_locked(key, /*tombstone=*/false, value)) return false;
  maybe_compact_locked();
  return true;
}

bool KvStore::erase(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.erases;
  if (!index_.count(std::string(key))) return true;  // nothing to do
  if (!append_locked(key, /*tombstone=*/true, {})) return false;
  maybe_compact_locked();
  return true;
}

bool KvStore::append_locked(std::string_view key, bool tombstone,
                            std::span<const std::uint8_t> value) {
  const std::vector<std::uint8_t> frame = encode_record(key, tombstone, value);
  if (!write_all(fd_, frame.data(), frame.size(), end_)) {
    // Partial append: cut the file back to the last good record so the
    // in-memory state and the log agree.
    (void)::ftruncate(fd_, static_cast<off_t>(end_));
    return false;
  }
  if (options_.fsync_writes && ::fsync(fd_) != 0) {
    (void)::ftruncate(fd_, static_cast<off_t>(end_));
    return false;
  }
  const std::string k(key);
  if (tombstone) {
    if (auto it = index_.find(k); it != index_.end()) {
      live_bytes_ -= it->second.size;
      index_.erase(it);
    }
  } else {
    auto [it, inserted] = index_.try_emplace(k);
    if (!inserted) live_bytes_ -= it->second.size;
    it->second = Slot{end_, frame.size()};
    live_bytes_ += frame.size();
  }
  end_ += frame.size();
  stats_.file_bytes = end_;
  stats_.live_bytes = live_bytes_;
  stats_.entries = index_.size();
  return true;
}

void KvStore::maybe_compact_locked() {
  if (options_.compact_garbage_ratio <= 0.0) return;
  if (end_ < options_.compact_min_bytes) return;
  const std::uint64_t garbage = end_ - live_bytes_;
  if (static_cast<double>(garbage) >
      options_.compact_garbage_ratio * static_cast<double>(end_))
    compact_locked();
}

void KvStore::compact() {
  std::lock_guard<std::mutex> lock(mu_);
  compact_locked();
}

// Copy every live record (raw frame bytes — already validated at index
// time) into a temp log, fsync, atomically swap it in, reindex. On any
// failure the old log stays authoritative.
void KvStore::compact_locked() {
  const std::string tmp_path = path_ + ".compact";
  // Same 0600 as the log proper: the temp file holds the same secret
  // key material until the rename swaps it in.
  const int tmp =
      ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0600);
  if (tmp < 0) return;
  std::uint64_t tmp_end = 0;
  std::unordered_map<std::string, Slot> new_index;
  new_index.reserve(index_.size());
  bool ok = true;
  std::vector<std::uint8_t> frame;
  for (const auto& [key, slot] : index_) {
    frame.resize(slot.size);
    if (!pread_exact(fd_, frame.data(), frame.size(), slot.offset) ||
        !write_all(tmp, frame.data(), frame.size(), tmp_end)) {
      ok = false;
      break;
    }
    new_index[key] = Slot{tmp_end, slot.size};
    tmp_end += frame.size();
  }
  if (!ok || ::fsync(tmp) != 0 ||
      ::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    ::close(tmp);
    ::unlink(tmp_path.c_str());
    return;
  }
  fsync_dir(options_.dir);
  ::close(fd_);
  fd_ = tmp;
  end_ = tmp_end;
  index_ = std::move(new_index);
  live_bytes_ = tmp_end;
  ++stats_.compactions;
  stats_.file_bytes = end_;
  stats_.live_bytes = live_bytes_;
  stats_.entries = index_.size();
  if (options_.events != nullptr)
    options_.events->emit(obs::EventKind::kKvCompaction, end_, index_.size(),
                          options_.filename);
}

bool KvStore::contains(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(std::string(key)) != 0;
}

std::size_t KvStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

KvStoreStats KvStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cgs::store
