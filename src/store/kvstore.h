#pragma once
// store::KvStore: the persistent layer behind the bounded per-key caches —
// a single append-log file plus an in-memory index, in the dbwrapper
// spirit but with zero external dependencies. Values are opaque byte
// blobs (callers store serial frames: ffLDL trees, NTT keys, netlists,
// recipes), so an evicted key warm-starts from one pread + decode instead
// of a recompute.
//
// On-disk form: a sequence of serial kKvRecord frames (magic + version +
// checksum each), one per put/erase. Recovery is a forward scan at open:
// the first record that fails any header or checksum check marks the torn
// tail and the file is truncated there — a crash mid-append loses at most
// the record being written, never an earlier one. Writes go through the
// log fd and (by default) fsync before the index is updated, so an
// acknowledged put survives power loss.
//
// Overwrites and tombstones leave garbage behind in the log; when the
// garbage ratio crosses compact_garbage_ratio (and the log is big enough
// to care), the live set is rewritten to a temp file which atomically
// replaces the log — readers never observe a half-compacted store.
//
// Thread-safe (one mutex; reads pread under it). Every operation is
// best-effort from the caller's perspective: an unwritable directory
// degrades the system to compute-per-miss, never to an error on the
// serving path.

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/events.h"

namespace cgs::store {

struct KvStoreOptions {
  std::string dir;                  // required: the store's directory
  std::string filename = "kv.log";  // log file name inside dir
  /// fsync the log after every put/erase. Turn off for bulk loads and
  /// benches; torn-tail recovery still holds either way (the OS may just
  /// lose more acknowledged tail records on power loss).
  bool fsync_writes = true;
  /// Compact when garbage/total exceeds this AND the log has at least
  /// compact_min_bytes. <= 0 disables auto-compaction (compact() still
  /// works).
  double compact_garbage_ratio = 0.5;
  std::uint64_t compact_min_bytes = 1u << 20;
  /// Optional structured event log (obs/events.h): compactions emit
  /// kKvCompaction and torn-tail recoveries emit kTornTailRecovery,
  /// tagged with `filename`. Must outlive the store. The counters in
  /// stats() are unaffected either way.
  obs::EventLog* events = nullptr;
};

struct KvStoreStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;      // gets that returned a value
  std::uint64_t puts = 0;
  std::uint64_t erases = 0;
  std::uint64_t compactions = 0;
  std::uint64_t truncated_bytes = 0;  // torn tail dropped at open
  std::uint64_t file_bytes = 0;       // current log size
  std::uint64_t live_bytes = 0;       // log bytes owned by live records
  std::size_t entries = 0;
};

class KvStore {
 public:
  /// Opens (creating the directory/log as needed) and replays the log.
  /// Throws cgs::Error only when the directory/log cannot be created or
  /// opened at all; a corrupt log never throws — it is truncated to its
  /// last valid prefix.
  explicit KvStore(KvStoreOptions options);
  ~KvStore();

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// The value last put under `key`; nullopt when absent (or the stored
  /// record fails re-validation — treated as a miss, never an error).
  std::optional<std::vector<std::uint8_t>> get(std::string_view key);

  /// Durably record key -> value (last write wins). Returns false on an
  /// I/O failure, in which case the store's previous state is intact.
  bool put(std::string_view key, std::span<const std::uint8_t> value);

  /// Tombstone `key`. Returns false on I/O failure.
  bool erase(std::string_view key);

  bool contains(std::string_view key) const;
  std::size_t size() const;

  /// Rewrite the log to just the live set (atomic swap). Best-effort: on
  /// failure the old log remains authoritative.
  void compact();

  KvStoreStats stats() const;
  const std::string& log_path() const { return path_; }

 private:
  struct Slot {
    std::uint64_t offset = 0;  // whole-frame span in the log
    std::uint64_t size = 0;
  };

  void replay_locked();
  bool append_locked(std::string_view key, bool tombstone,
                     std::span<const std::uint8_t> value);
  void maybe_compact_locked();
  void compact_locked();

  KvStoreOptions options_;
  std::string path_;
  mutable std::mutex mu_;
  int fd_ = -1;
  std::uint64_t end_ = 0;        // append offset == current file size
  std::uint64_t live_bytes_ = 0;
  std::unordered_map<std::string, Slot> index_;
  KvStoreStats stats_;
};

}  // namespace cgs::store
