// Boolean-function toolkit: cubes, truth tables, exact QM minimization
// (checked against brute force on small functions), espresso-lite, netlist
// building with CSE, and the C emitter.

#include <gtest/gtest.h>

#include <random>

#include "bf/codegen.h"
#include "bf/espresso_lite.h"
#include "bf/netlist.h"
#include "bf/quine_mccluskey.h"

namespace cgs::bf {
namespace {

TEST(Cube, MintermAndCoverage) {
  const Cube c = Cube::minterm(0b101, 3);
  EXPECT_EQ(c.literal_count(), 3);
  EXPECT_TRUE(c.covers_minterm(0b101));
  EXPECT_FALSE(c.covers_minterm(0b100));
  EXPECT_EQ(c.to_string(), "101");  // variable 0 first
}

TEST(Cube, SetVarAndDontCare) {
  Cube c(4);
  EXPECT_EQ(c.literal_count(), 0);
  EXPECT_TRUE(c.covers_minterm(0b1111));
  c.set_var(2, 1);
  EXPECT_TRUE(c.covers_minterm(0b0100));
  EXPECT_FALSE(c.covers_minterm(0b0000));
  c.set_var(2, -1);
  EXPECT_TRUE(c.covers_minterm(0b0000));
}

TEST(Cube, MergeAdjacent) {
  const Cube a = Cube::minterm(0b000, 3);
  const Cube b = Cube::minterm(0b100, 3);
  const auto m = a.merge_adjacent(b);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->literal_count(), 2);
  EXPECT_TRUE(m->covers_minterm(0b000));
  EXPECT_TRUE(m->covers_minterm(0b100));
  EXPECT_FALSE(m->covers_minterm(0b010));
  // Distance-2 pair does not merge.
  EXPECT_FALSE(Cube::minterm(0b000, 3)
                   .merge_adjacent(Cube::minterm(0b110, 3))
                   .has_value());
}

TEST(Cube, ContainsAndIntersects) {
  Cube wide(3);
  wide.set_var(0, 1);  // x = 1--
  const Cube narrow = Cube::minterm(0b101, 3);
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  EXPECT_TRUE(wide.intersects(narrow));
  Cube other(3);
  other.set_var(0, 0);
  EXPECT_FALSE(wide.intersects(other));
}

TEST(Cube, WideCubes128Vars) {
  Cube c(128);
  c.set_var(0, 1);
  c.set_var(127, 0);
  EXPECT_EQ(c.literal_count(), 2);
  Cube d = c;
  d.set_var(127, 1);
  const auto m = c.merge_adjacent(d);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->var(127), -1);
  EXPECT_EQ(m->var(0), 1);
}

TEST(TruthTable, BlocksAndConflicts) {
  TruthTable tt(3);
  tt.set_block(0b100, 1, TruthTable::State::kOn);  // minterms 4,5
  EXPECT_EQ(tt.state(0b100), TruthTable::State::kOn);
  EXPECT_EQ(tt.state(0b101), TruthTable::State::kOn);
  EXPECT_EQ(tt.state(0b110), TruthTable::State::kDc);
  EXPECT_THROW(tt.set_block(0b101, 0, TruthTable::State::kOff), Error);
}

// Reference: brute-force minimal cover size by subset enumeration over
// primes (only for tiny functions).
int brute_force_min_cubes(const TruthTable& tt) {
  const auto primes = prime_implicants(tt);
  const auto on = tt.on_set();
  if (on.empty()) return 0;
  const int np = static_cast<int>(primes.size());
  for (int k = 1; k <= np; ++k) {
    // all k-subsets
    std::vector<int> idx(static_cast<std::size_t>(k));
    std::function<bool(int, int)> rec = [&](int start, int depth) {
      if (depth == k) {
        for (std::uint64_t m : on) {
          bool cov = false;
          for (int i = 0; i < k && !cov; ++i)
            cov = primes[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])].covers_minterm(m);
          if (!cov) return false;
        }
        return true;
      }
      for (int p = start; p < np; ++p) {
        idx[static_cast<std::size_t>(depth)] = p;
        if (rec(p + 1, depth + 1)) return true;
      }
      return false;
    };
    if (rec(0, 0)) return k;
  }
  return np;
}

class QmRandomFunctions : public ::testing::TestWithParam<int> {};

TEST_P(QmRandomFunctions, ExactCoverIsCorrectAndMinimal) {
  std::mt19937_64 gen(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const int nv = 4;
    TruthTable tt(nv);
    for (std::uint64_t m = 0; m < tt.size(); ++m) {
      const int r = static_cast<int>(gen() % 3);
      tt.set(m, r == 0 ? TruthTable::State::kOn
                       : (r == 1 ? TruthTable::State::kOff
                                 : TruthTable::State::kDc));
    }
    const MinimizeResult res = minimize_exact(tt);
    EXPECT_TRUE(res.exact);
    EXPECT_TRUE(tt.cover_matches(res.cover));
    EXPECT_EQ(static_cast<int>(res.cover.size()), brute_force_min_cubes(tt));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QmRandomFunctions,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Qm, ClassicTextbookFunction) {
  // f = sum m(0,1,2,5,6,7) over 3 vars (with our bit-order convention:
  // minterm bit v = variable v) has a known 3-cube minimum... verify
  // correctness and size <= 4 plus exactness.
  TruthTable tt(3);
  for (std::uint64_t m : {0, 1, 2, 5, 6, 7})
    tt.set(static_cast<std::uint64_t>(m), TruthTable::State::kOn);
  for (std::uint64_t m : {3, 4}) tt.set(static_cast<std::uint64_t>(m), TruthTable::State::kOff);
  const auto res = minimize_exact(tt);
  EXPECT_TRUE(res.exact);
  EXPECT_TRUE(tt.cover_matches(res.cover));
  EXPECT_EQ(res.cover.size(), 3u);
}

TEST(Qm, ConstantFunctions) {
  TruthTable all_on(3);
  for (std::uint64_t m = 0; m < 8; ++m) all_on.set(m, TruthTable::State::kOn);
  const auto res = minimize_exact(all_on);
  ASSERT_EQ(res.cover.size(), 1u);
  EXPECT_EQ(res.cover[0].literal_count(), 0);

  TruthTable all_off(3);
  for (std::uint64_t m = 0; m < 8; ++m) all_off.set(m, TruthTable::State::kOff);
  EXPECT_TRUE(minimize_exact(all_off).cover.empty());
}

TEST(Qm, DontCaresEnableWiderCubes) {
  // ON = {11}, DC everywhere else -> single literal-free cube.
  TruthTable tt(2);
  tt.set(0b11, TruthTable::State::kOn);
  const auto res = minimize_exact(tt);
  ASSERT_EQ(res.cover.size(), 1u);
  EXPECT_EQ(res.cover[0].literal_count(), 0);
}

TEST(EspressoLite, CorrectOnRandomFunctions) {
  std::mt19937_64 gen(42);
  for (int trial = 0; trial < 30; ++trial) {
    const int nv = 6;
    TruthTable tt(nv);
    std::vector<Cube> raw;
    for (std::uint64_t m = 0; m < tt.size(); ++m) {
      const int r = static_cast<int>(gen() % 3);
      tt.set(m, r == 0 ? TruthTable::State::kOn
                       : (r == 1 ? TruthTable::State::kOff
                                 : TruthTable::State::kDc));
      if (r == 0) raw.push_back(Cube::minterm(m, nv));
    }
    const auto cover = espresso_lite(tt, raw);
    EXPECT_TRUE(tt.cover_matches(cover));
    EXPECT_LE(cover.size(), raw.size());
  }
}

TEST(MergeOnly, PreservesCoveredSetExactly) {
  std::mt19937_64 gen(7);
  const int nv = 5;
  std::vector<Cube> cubes;
  for (int i = 0; i < 12; ++i)
    cubes.push_back(Cube::minterm(gen() % 32, nv));
  const auto merged = merge_only(cubes);
  for (std::uint64_t m = 0; m < 32; ++m) {
    EXPECT_EQ(TruthTable::eval_cover(cubes, m),
              TruthTable::eval_cover(merged, m));
  }
  EXPECT_LE(merged.size(), cubes.size());
}

TEST(Netlist, BuilderConstantFolding) {
  NetlistBuilder b(2);
  EXPECT_EQ(b.land(b.const0(), b.input(0)), b.const0());
  EXPECT_EQ(b.land(b.const1(), b.input(0)), b.input(0));
  EXPECT_EQ(b.lor(b.const1(), b.input(0)), b.const1());
  EXPECT_EQ(b.lxor(b.input(1), b.input(1)), b.const0());
  EXPECT_EQ(b.lnot(b.const0()), b.const1());
}

TEST(Netlist, CseDeduplicates) {
  NetlistBuilder b(2, /*enable_cse=*/true);
  const auto x = b.land(b.input(0), b.input(1));
  const auto y = b.land(b.input(1), b.input(0));  // commuted
  EXPECT_EQ(x, y);
  b.add_output(x);
  const Netlist nl = b.take();
  EXPECT_EQ(nl.op_count(), 1u);
}

TEST(Netlist, EvalMatchesSemantics) {
  NetlistBuilder b(3);
  // f = (a & ~b) | (b ^ c)
  const auto f = b.lor(b.land(b.input(0), b.lnot(b.input(1))),
                       b.lxor(b.input(1), b.input(2)));
  b.add_output(f);
  const Netlist nl = b.take();
  for (int m = 0; m < 8; ++m) {
    const int a = m & 1, bb = (m >> 1) & 1, c = (m >> 2) & 1;
    const int expect = (a & !bb) | (bb ^ c);
    EXPECT_EQ(nl.eval_bits({a, bb, c})[0], expect) << m;
  }
}

TEST(Netlist, SopOverCubes) {
  NetlistBuilder b(3);
  std::vector<Cube> cover = {Cube::minterm(0b011, 3), Cube::minterm(0b100, 3)};
  b.add_output(b.sop(cover, 0));
  const Netlist nl = b.take();
  for (std::uint64_t m = 0; m < 8; ++m) {
    const bool expect = (m == 0b011) || (m == 0b100);
    EXPECT_EQ(nl.eval_bits({int(m & 1), int((m >> 1) & 1), int((m >> 2) & 1)})[0],
              expect ? 1 : 0);
  }
}

TEST(Netlist, BitslicedLanesAreIndependent) {
  NetlistBuilder b(2);
  b.add_output(b.land(b.input(0), b.input(1)));
  const Netlist nl = b.take();
  std::vector<std::uint64_t> in = {0xF0F0F0F0F0F0F0F0ull,
                                   0xFF00FF00FF00FF00ull};
  std::vector<std::uint64_t> out(1);
  nl.eval(in, out);
  EXPECT_EQ(out[0], 0xF000F000F000F000ull);
}

TEST(Codegen, EmitsCompilableLookingC) {
  NetlistBuilder b(2);
  b.add_output(b.lxor(b.input(0), b.input(1)));
  const std::string src = emit_c(b.take(), "xor_core");
  EXPECT_NE(src.find("void xor_core(const uint64_t in[2], uint64_t out[1])"),
            std::string::npos);
  EXPECT_NE(src.find("#include <stdint.h>"), std::string::npos);
  EXPECT_EQ(src.find("if"), std::string::npos);  // branch-free by construction
}

}  // namespace
}  // namespace cgs::bf
