// BigInt arithmetic, checked against __int128 on random inputs, plus the
// binary XGCD and the scaled-double extraction NTRUSolve depends on.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "bigint/bigint.h"

namespace cgs::bigint {
namespace {

using i128 = __int128;

BigInt from_i128(i128 v) {
  // Build via shifts so the test does not rely on the 64-bit constructor
  // alone.
  const bool neg = v < 0;
  unsigned __int128 mag = neg ? static_cast<unsigned __int128>(-(v + 1)) + 1
                              : static_cast<unsigned __int128>(v);
  BigInt r(static_cast<std::int64_t>(mag & 0x7fffffffffffffffull));
  BigInt hi(static_cast<std::int64_t>(mag >> 63));
  r = r + hi.shifted_left(63);
  return neg ? -r : r;
}

TEST(BigInt, Int64RoundTrip) {
  for (std::int64_t v : {0ll, 1ll, -1ll, 42ll, -12289ll,
                         9223372036854775807ll, -9223372036854775807ll}) {
    EXPECT_EQ(BigInt(v).to_int64(), v);
  }
}

TEST(BigInt, SignBasics) {
  EXPECT_TRUE(BigInt(0).is_zero());
  EXPECT_FALSE(BigInt(0).is_negative());
  EXPECT_TRUE(BigInt(-3).is_negative());
  EXPECT_TRUE((-BigInt(-3) == BigInt(3)));
  EXPECT_TRUE((-BigInt(0)).is_zero());
  EXPECT_EQ(BigInt(-7).abs().to_int64(), 7);
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt(0).bit_length(), 0);
  EXPECT_EQ(BigInt(1).bit_length(), 1);
  EXPECT_EQ(BigInt(255).bit_length(), 8);
  EXPECT_EQ(BigInt(256).bit_length(), 9);
  EXPECT_EQ(BigInt(1).shifted_left(1000).bit_length(), 1001);
}

class BigIntRandomArith : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntRandomArith, MatchesInt128) {
  std::mt19937_64 gen(GetParam());
  std::uniform_int_distribution<std::int64_t> d(-1000000000000ll,
                                                1000000000000ll);
  for (int it = 0; it < 200; ++it) {
    const std::int64_t a = d(gen), b = d(gen);
    const BigInt A(a), B(b);
    // Compare exactly in BigInt space (products reach ~80 bits, beyond
    // double's 53-bit mantissa, so no lossy conversions here).
    EXPECT_EQ((A + B).compare(from_i128(static_cast<i128>(a) + b)), 0);
    EXPECT_EQ((A - B).compare(from_i128(static_cast<i128>(a) - b)), 0);
    EXPECT_EQ((A * B).compare(from_i128(static_cast<i128>(a) * b)), 0);
    EXPECT_EQ(A.compare(B), (a < b ? -1 : (a == b ? 0 : 1)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntRandomArith,
                         ::testing::Values(1, 2, 3, 7, 1234));

TEST(BigInt, ShiftRoundTrip) {
  std::mt19937_64 gen(99);
  for (int it = 0; it < 100; ++it) {
    const auto v = static_cast<std::int64_t>(gen() >> 2);
    const int s = static_cast<int>(gen() % 300);
    const BigInt x(v);
    EXPECT_EQ(x.shifted_left(s).shifted_right(s).compare(x), 0);
  }
}

TEST(BigInt, ShiftIsMultiplication) {
  const BigInt x(12345);
  EXPECT_EQ((x.shifted_left(5)).compare(x * BigInt(32)), 0);
}

TEST(BigInt, LargeMultiplicationAssociates) {
  // (a*b)*c == a*(b*c) at ~600 bits.
  const BigInt a = BigInt(0x123456789abcdefll).shifted_left(150) + BigInt(981);
  const BigInt b = BigInt(-0x0fedcba987654321ll).shifted_left(180) + BigInt(7);
  const BigInt c = BigInt(0x1111111111111ll).shifted_left(200) - BigInt(13);
  EXPECT_EQ(((a * b) * c).compare(a * (b * c)), 0);
  EXPECT_EQ((a * b).compare(b * a), 0);
}

TEST(BigInt, ToDoubleScaledNormalized) {
  const BigInt v = BigInt(0x123456789abcdefll).shifted_left(500);
  int e = 0;
  const double m = v.to_double_scaled(e);
  EXPECT_GE(std::fabs(m), 0.5);
  EXPECT_LT(std::fabs(m), 1.0);
  EXPECT_EQ(e, v.bit_length());
  EXPECT_NEAR(std::fabs(m) * std::pow(2.0, 20),
              std::ldexp(0x123456789abcdefll, 20 - 57), 1e3);
}

class XgcdRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XgcdRandom, BezoutIdentityHolds) {
  std::mt19937_64 gen(GetParam());
  std::uniform_int_distribution<std::int64_t> d(-100000000, 100000000);
  for (int it = 0; it < 100; ++it) {
    std::int64_t a = d(gen), b = d(gen);
    if (a == 0 && b == 0) continue;
    BigInt u, v;
    const BigInt g = BigInt::xgcd(BigInt(a), BigInt(b), u, v);
    // g == gcd(|a|, |b|)
    const std::int64_t ref = std::gcd(std::llabs(a), std::llabs(b));
    EXPECT_EQ(g.to_int64(), ref) << a << "," << b;
    // u a + v b == g
    const BigInt lhs = u * BigInt(a) + v * BigInt(b);
    EXPECT_EQ(lhs.compare(g), 0) << a << "," << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XgcdRandom, ::testing::Values(11, 22, 33));

TEST(BigInt, XgcdHugeInputs) {
  // Coprime pair at ~1000 bits: 2^1000 - 1 (odd) and 2^999 (power of two).
  const BigInt a = BigInt(1).shifted_left(1000) - BigInt(1);
  const BigInt b = BigInt(1).shifted_left(999);
  BigInt u, v;
  const BigInt g = BigInt::xgcd(a, b, u, v);
  EXPECT_EQ(g.to_int64(), 1);
  EXPECT_EQ((u * a + v * b).compare(BigInt(1)), 0);
}

TEST(BigInt, HexRendering) {
  EXPECT_EQ(BigInt(0).to_string_hex(), "0");
  EXPECT_EQ(BigInt(255).to_string_hex(), "0xff");
  EXPECT_EQ(BigInt(-16).to_string_hex(), "-0x10");
}

}  // namespace
}  // namespace cgs::bigint
