// CDT table construction and the three CDT samplers: mutual agreement on
// identical inputs, distribution quality, and the constant-time compare.

#include <gtest/gtest.h>

#include "cdt/cdt_samplers.h"
#include "cdt/cdt_table.h"
#include "prng/splitmix.h"
#include "stats/chisquare.h"

namespace cgs::cdt {
namespace {

TEST(U128, OrderingAndCtCompare) {
  const U128 a{1, 5}, b{1, 6}, c{2, 0};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_FALSE(c < a);
  EXPECT_EQ(U128::lt_ct(a, b), 1u);
  EXPECT_EQ(U128::lt_ct(b, a), 0u);
  EXPECT_EQ(U128::lt_ct(a, a), 0u);
  EXPECT_EQ(U128::lt_ct(a, c), 1u);
  // Borrow propagation edge: lo underflow.
  const U128 x{5, 0}, y{4, ~std::uint64_t(0)};
  EXPECT_EQ(U128::lt_ct(x, y), 0u);
  EXPECT_EQ(U128::lt_ct(y, x), 1u);
}

TEST(CdtTable, CumulativeStrictlyIncreasing) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  const CdtTable t(m);
  ASSERT_EQ(t.size(), m.rows());
  for (std::size_t v = 1; v < t.size(); ++v) {
    EXPECT_TRUE(t.cum(v - 1) < t.cum(v) || t.cum(v - 1) == t.cum(v));
  }
  // Head rows carry real mass.
  EXPECT_TRUE(t.cum(0) < t.cum(5));
}

TEST(CdtTable, BytesMatchWords) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  const CdtTable t(m);
  for (std::size_t v = 0; v < t.size(); ++v) {
    std::uint64_t hi = 0, lo = 0;
    for (int k = 0; k < 8; ++k) {
      hi = (hi << 8) | t.byte(v, k);
      lo = (lo << 8) | t.byte(v, 8 + k);
    }
    EXPECT_EQ(hi, t.cum(v).hi);
    EXPECT_EQ(lo, t.cum(v).lo);
  }
}

TEST(CdtTable, FirstRowSkipTableIsSound) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_6_15543(128));
  const CdtTable t(m);
  for (int b = 0; b < 256; ++b) {
    const std::size_t first = t.first_row_for_byte(static_cast<std::uint8_t>(b));
    // All rows before `first` have first byte < b, so r (first byte b) can
    // never be < cum(v) there... verify directly.
    for (std::size_t v = 0; v < first; ++v)
      EXPECT_LT(t.byte(v, 0), b);
  }
}

TEST(CdtSamplers, AllThreeAgreeOnIdenticalRandomness) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  const CdtTable t(m);
  CdtBinarySearchSampler bin(t);
  CdtByteScanSampler byte(t);
  CdtLinearCtSampler lin(t);
  // Same seed three times: identical draw sequences -> identical samples.
  prng::SplitMix64Source r1(5), r2(5), r3(5);
  for (int it = 0; it < 5000; ++it) {
    const auto a = bin.sample_magnitude(r1);
    const auto b = byte.sample_magnitude(r2);
    const auto c = lin.sample_magnitude(r3);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
  }
}

TEST(CdtSamplers, AgreeWithReferenceLookup) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  const CdtTable t(m);
  prng::SplitMix64Source rng(9);
  for (int it = 0; it < 3000; ++it) {
    const U128 r = detail::draw_u128(rng);
    const std::size_t ref = t.lookup_linear_reference(r);
    // Reconstruct each sampler's core on this exact draw.
    std::size_t lo = 0, hi = t.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (r < t.cum(mid)) hi = mid; else lo = mid + 1;
    }
    EXPECT_EQ(lo, ref);
    std::uint64_t ge = 0;
    for (std::size_t v = 0; v < t.size(); ++v)
      ge += 1u - U128::lt_ct(r, t.cum(v));
    EXPECT_EQ(static_cast<std::size_t>(ge), ref);
  }
}

class CdtDistribution : public ::testing::TestWithParam<int> {};

TEST_P(CdtDistribution, ChiSquareAgainstMatrix) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  const CdtTable t(m);
  CdtBinarySearchSampler bin(t);
  CdtByteScanSampler byte(t);
  CdtLinearCtSampler lin(t);
  IntSampler* samplers[] = {&bin, &byte, &lin};
  IntSampler& s = *samplers[GetParam()];

  prng::SplitMix64Source rng(100 + GetParam());
  stats::Histogram h;
  for (int it = 0; it < 200000; ++it) h.add(s.sample(rng));
  const auto res = stats::chi_square_signed(h, m);
  EXPECT_GT(res.p_value, 1e-6) << s.name() << " chi2=" << res.statistic;
}

INSTANTIATE_TEST_SUITE_P(Samplers, CdtDistribution, ::testing::Values(0, 1, 2));

TEST(CdtSamplers, NamesAndCtFlags) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(64));
  const CdtTable t(m);
  EXPECT_FALSE(CdtBinarySearchSampler(t).constant_time());
  EXPECT_FALSE(CdtByteScanSampler(t).constant_time());
  EXPECT_TRUE(CdtLinearCtSampler(t).constant_time());
  EXPECT_STREQ(CdtByteScanSampler(t).name(), "cdt-byte-scan");
}

TEST(CdtSamplers, MatchKnuthYaoDistribution) {
  // CDT and Knuth-Yao consume the same probability matrix, so their
  // distributions are identical by construction; cross-check empirically.
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  const CdtTable t(m);
  CdtLinearCtSampler lin(t);
  prng::SplitMix64Source rng(31);
  double var = 0;
  const int k = 50000;
  for (int i = 0; i < k; ++i) {
    const double v = lin.sample(rng);
    var += v * v;
  }
  EXPECT_NEAR(var / k, 4.0, 0.15);
}

}  // namespace
}  // namespace cgs::cdt
