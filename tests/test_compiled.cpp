// Compiled-kernel sampler: bit-exact equivalence with the interpreted
// netlist on identical randomness, across parameter sets.

#include <gtest/gtest.h>

#include "ct/bitsliced_sampler.h"
#include "ct/compiled_sampler.h"
#include "prng/chacha20.h"

namespace cgs::ct {
namespace {

class CompiledVsInterpreted : public ::testing::TestWithParam<int> {};

TEST_P(CompiledVsInterpreted, IdenticalBatches) {
  if (!CompiledKernel::is_available())
    GTEST_SKIP() << "no host compiler on this machine";
  const auto params = GetParam() == 0 ? gauss::GaussianParams::sigma_2(128)
                     : GetParam() == 1
                         ? gauss::GaussianParams::sigma_1(64)
                         : gauss::GaussianParams::sigma_6_15543(128);
  const gauss::ProbMatrix m(params);
  BitslicedSampler interp(synthesize(m, {}));
  CompiledBitslicedSampler comp(synthesize(m, {}));
  prng::ChaCha20Source rng_a(9), rng_b(9);
  std::int32_t a[64], b[64];
  for (int batch = 0; batch < 30; ++batch) {
    const auto va = interp.sample_batch(rng_a, a);
    const auto vb = comp.sample_batch(rng_b, b);
    ASSERT_EQ(va, vb);
    for (int i = 0; i < 64; ++i) ASSERT_EQ(a[i], b[i]) << batch << ":" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Params, CompiledVsInterpreted,
                         ::testing::Values(0, 1, 2));

TEST(BufferedCompiled, ServesSamples) {
  if (!CompiledKernel::is_available()) GTEST_SKIP();
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  BufferedCompiledSampler s(synthesize(m, {}));
  prng::ChaCha20Source rng(4);
  double sum_sq = 0;
  const int k = 20000;
  for (int i = 0; i < k; ++i) {
    const double v = s.sample(rng);
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum_sq / k, 4.0, 0.2);
}

}  // namespace
}  // namespace cgs::ct
