// Constant-time validation, two ways:
//  1. Structural: the bit-sliced sampler's netlist executes the identical
//     straight-line op sequence regardless of input — checked by
//     construction (op traces cannot diverge) and by instruction-free
//     equality of work done.
//  2. Empirical: dudect (Welch t-test on cycle counts) on the samplers, the
//     method the paper used. Wall-clock assertions use generous thresholds
//     because CI machines are noisy; the structural checks are the strict
//     ones.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "cdt/cdt_samplers.h"
#include "common/bits.h"
#include "conv/convolution.h"
#include "ct/bitsliced_sampler.h"
#include "prng/splitmix.h"
#include "stats/dudect.h"

namespace cgs {
namespace {

TEST(StructuralCt, NetlistHasNoDataDependentControl) {
  // Straight-line IR: every node executes exactly once per eval; there is
  // no branch construct in the Op set at all. Verify the sampler's netlist
  // touches each node id in order (a topological straight line).
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(64));
  const auto synth = ct::synthesize(m, {});
  const auto& nodes = synth.netlist.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i].a, static_cast<std::int32_t>(i));
    if (nodes[i].op == bf::Op::kAnd || nodes[i].op == bf::Op::kOr ||
        nodes[i].op == bf::Op::kXor) {
      EXPECT_LT(nodes[i].b, static_cast<std::int32_t>(i));
    }
  }
}

TEST(StructuralCt, SamplerConsumesFixedRandomness) {
  // Constant time implies constant consumption: every batch reads exactly
  // n + 1 words no matter what values appear.
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(64));
  ct::BitslicedSampler s(ct::synthesize(m, {}));

  class CountingSource final : public RandomBitSource {
   public:
    std::uint64_t next_word() override {
      ++count;
      return 0xdeadbeefcafef00dull * count;
    }
    std::uint64_t count = 0;
  } src;

  std::int32_t out[64];
  for (int batch = 1; batch <= 20; ++batch) {
    (void)s.sample_batch(src, out);
    EXPECT_EQ(src.count, static_cast<std::uint64_t>(batch) * 65);
  }
}

TEST(StructuralCt, LinearCdtTouchesWholeTableAlways) {
  // The linear CT sampler must compare against every row regardless of the
  // draw: feed extreme draws (all-zeros: answer row 0; all-ones: restart)
  // and verify via draw accounting that consumption is fixed per attempt.
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  const cdt::CdtTable t(m);
  cdt::CdtLinearCtSampler s(t);
  DeterministicBitSource zeros(std::vector<int>(128, 0));
  EXPECT_EQ(s.sample_magnitude(zeros), 0u);  // r = 0 -> first row
}

// The wall-clock dudect experiments. dudect methodology: the class decides
// the *input data* (fixed all-zeros vs fresh random), but input generation
// happens OUTSIDE the measured region, through a source whose serving cost
// is identical for both classes. Only the sampler computation is timed.
class ArraySource final : public RandomBitSource {
 public:
  void load(const std::uint64_t* words, std::size_t count) {
    words_ = words;
    count_ = count;
    pos_ = 0;
  }
  std::uint64_t next_word() override {
    const std::uint64_t w = words_[pos_];
    pos_ = (pos_ + 1) % count_;
    return w;
  }

 private:
  const std::uint64_t* words_ = nullptr;
  std::size_t count_ = 0;
  std::size_t pos_ = 0;
};

class TimingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    prng::SplitMix64Source seed(1234);
    for (auto& w : random_words_) w = seed.next_word();
    zero_words_.fill(0);
  }

  // Prepares the class input and returns a source serving it; the per-call
  // cost of the source itself is class-independent.
  ArraySource& source_for(int cls) {
    src_.load(cls ? random_words_.data() : zero_words_.data(),
              random_words_.size());
    return src_;
  }

  gauss::ProbMatrix matrix_{gauss::GaussianParams::sigma_2(128)};
  cdt::CdtTable table_{matrix_};
  std::array<std::uint64_t, 512> random_words_{};
  std::array<std::uint64_t, 512> zero_words_{};
  ArraySource src_;
};

TEST_F(TimingFixture, ByteScanCdtLeaks) {
  cdt::CdtByteScanSampler s(table_);
  // r=0 always decides on the first table row's first byte -> strongly
  // faster class. This is exactly the leak the paper's samplers remove.
  // Measurement noise under load can mask it in a single run, so retry
  // with growing sample counts; any detection proves the leak.
  stats::WelchResult last;
  for (std::size_t meas : {20000u, 60000u, 200000u}) {
    last = stats::dudect(
        [&](int cls) { (void)s.sample_magnitude(source_for(cls)); },
        {.measurements = meas, .warmup = 1000, .keep_percentile = 0.9});
    if (last.leaky()) return;
  }
  FAIL() << "byte-scan CDT leak not detected: " << last.describe();
}

TEST_F(TimingFixture, BitslicedSamplerFlat) {
  ct::BitslicedSampler s(ct::synthesize(matrix_, {}));
  std::uint32_t out[64];
  const auto r = stats::dudect(
      [&](int cls) { (void)s.sample_magnitudes(source_for(cls), out); },
      {.measurements = 8000, .warmup = 500, .keep_percentile = 0.9});
  // Structurally constant-time; allow slack for measurement noise.
  EXPECT_LT(std::fabs(r.t), 30.0) << r.describe();
}

TEST_F(TimingFixture, LinearCdtFlat) {
  cdt::CdtLinearCtSampler s(table_);
  const auto r = stats::dudect(
      [&](int cls) { (void)s.sample_magnitude(source_for(cls)); },
      {.measurements = 12000, .warmup = 500, .keep_percentile = 0.9});
  EXPECT_LT(std::fabs(r.t), 30.0) << r.describe();
}

TEST(StructuralCt, BranchFreePrimitivesMatchTheirSpecs) {
  // The combine/shift stage is built on these two; verify them against the
  // branchy spec over adversarial and random inputs.
  prng::SplitMix64Source rng(2024);
  const std::uint64_t edges[] = {0ull, 1ull, (1ull << 63) - 1, 1ull << 63,
                                 ~0ull, ~0ull - 1};
  for (std::uint64_t x : edges)
    for (std::uint64_t y : edges)
      ASSERT_EQ(ct_lt_u64(x, y), x < y ? 1u : 0u) << x << " " << y;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t x = rng.next_word(), y = rng.next_word();
    ASSERT_EQ(ct_lt_u64(x, y), x < y ? 1u : 0u);
  }
  const std::int32_t iedges[] = {0, 1, -1, 1000000, -1000000,
                                 std::numeric_limits<std::int32_t>::max(),
                                 std::numeric_limits<std::int32_t>::min() + 1};
  for (std::int32_t v : iedges)
    ASSERT_EQ(ct_abs_i32(v), static_cast<std::uint32_t>(std::abs(
                                 static_cast<std::int64_t>(v))));
}

TEST_F(TimingFixture, ConvolutionCombineStageFlat) {
  // The fix under test: the combine/shift/randomized-rounding stage must be
  // branch-free on the *values* — class 0 feeds all-zero inputs, class 1
  // fresh random in-support samples, and the Welch t statistic over the
  // combine runtime must stay below the (noise-tolerant, CI-stable)
  // threshold the other structurally-flat samplers use.
  conv::BatchConvolver cv(13, -3, 0.5);
  constexpr std::size_t kN = 256;
  std::array<std::int32_t, kN> zero1{}, zero2{}, rand1{}, rand2{}, out{};
  prng::SplitMix64Source seed(77);
  for (std::size_t i = 0; i < kN; ++i) {
    rand1[i] = static_cast<std::int32_t>(seed.next_word() % 561) - 280;
    rand2[i] = static_cast<std::int32_t>(seed.next_word() % 561) - 280;
  }
  const auto r = stats::dudect(
      [&](int cls) {
        auto& rounding = source_for(cls);  // class-independent serving cost
        cv.combine(cls ? rand1 : zero1, cls ? rand2 : zero2, rounding, out);
      },
      {.measurements = 8000, .warmup = 500, .keep_percentile = 0.9});
  EXPECT_LT(std::fabs(r.t), 30.0) << r.describe();
}

}  // namespace
}  // namespace cgs
