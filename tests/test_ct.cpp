// The paper's core machinery: Theorem 1, Claim 1, sublist structure, and
// the synthesized constant-time samplers (split and flat), parameterized
// across sigma and precision.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ct/bitsliced_sampler.h"
#include "ct/flat_baseline.h"
#include "ct/synthesis.h"
#include "ddg/kysampler.h"
#include "prng/chacha20.h"
#include "prng/splitmix.h"
#include "stats/chisquare.h"

namespace cgs::ct {
namespace {

struct Case {
  const char* name;
  gauss::GaussianParams params;
};

std::vector<Case> small_cases() {
  return {
      {"sigma1_n16", gauss::GaussianParams::sigma_1(16)},
      {"sigma1_n24", gauss::GaussianParams::sigma_1(24)},
      {"sigma2_n16", gauss::GaussianParams::sigma_2(16)},
      {"sigma2_n32", gauss::GaussianParams::sigma_2(32)},
      {"sqrt5_n24", gauss::GaussianParams::sigma_sqrt5(24)},
      {"sigma6_n24", gauss::GaussianParams::sigma_6_15543(24)},
  };
}

class LeafEnumCases : public ::testing::TestWithParam<int> {};

TEST_P(LeafEnumCases, Theorem1FormAndWalkAgreement) {
  const Case c = small_cases()[static_cast<std::size_t>(GetParam())];
  const gauss::ProbMatrix m(c.params);
  const ddg::KnuthYaoSampler ref(m);
  const LeafList list = enumerate_leaves(m);

  std::set<std::vector<int>> seen;
  for (const Leaf& leaf : list.leaves) {
    // Theorem 1: draw-order form 1^kappa 0 (0/1)^j.
    const std::vector<int> bits = leaf.bits();
    ASSERT_EQ(static_cast<int>(bits.size()), leaf.level + 1);
    for (int i = 0; i < leaf.kappa; ++i) EXPECT_EQ(bits[static_cast<std::size_t>(i)], 1);
    EXPECT_EQ(bits[static_cast<std::size_t>(leaf.kappa)], 0);
    EXPECT_EQ(leaf.j, leaf.level - leaf.kappa);
    // Uniqueness of paths.
    EXPECT_TRUE(seen.insert(bits).second);
    // The walk agrees bit-for-bit.
    const auto w = ref.walk_bits(bits);
    ASSERT_TRUE(w.has_value()) << c.name;
    EXPECT_EQ(w->value, leaf.value);
    EXPECT_EQ(w->bits_used, leaf.level + 1);
  }
}

TEST_P(LeafEnumCases, AllOnesNeverHits) {
  const Case c = small_cases()[static_cast<std::size_t>(GetParam())];
  const gauss::ProbMatrix m(c.params);
  const ddg::KnuthYaoSampler ref(m);
  std::vector<int> ones(static_cast<std::size_t>(m.precision()), 1);
  EXPECT_FALSE(ref.walk_bits(ones).has_value()) << c.name;
}

TEST_P(LeafEnumCases, CoveredMassMatchesDeficit) {
  const Case c = small_cases()[static_cast<std::size_t>(GetParam())];
  const gauss::ProbMatrix m(c.params);
  const LeafList list = enumerate_leaves(m);
  EXPECT_NEAR(list.covered_probability, 1.0 - m.deficit_double(), 1e-12);
}

TEST_P(LeafEnumCases, LeafCountMatchesColumnWeights) {
  const Case c = small_cases()[static_cast<std::size_t>(GetParam())];
  const gauss::ProbMatrix m(c.params);
  const LeafList list = enumerate_leaves(m);
  std::size_t expect = 0;
  for (int i = 0; i < m.precision(); ++i)
    expect += static_cast<std::size_t>(m.column_weight(i));
  EXPECT_EQ(list.leaves.size(), expect);
}

INSTANTIATE_TEST_SUITE_P(Cases, LeafEnumCases,
                         ::testing::Range(0, 6));

TEST(Sublists, Claim1OneHotSelectors) {
  // c_kappa = b_0 & ... & b_{kappa-1} & ~b_kappa is 1 iff the string has
  // exactly kappa leading ones — brute-force over all 2^12 strings.
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(12));
  const LeafList list = enumerate_leaves(m);
  const SublistSplit split = split_by_kappa(list);
  for (std::uint32_t x = 0; x < (1u << 12); ++x) {
    int leading = 0;
    while (leading < 12 && ((x >> leading) & 1u)) ++leading;
    for (const Sublist& sl : split.sublists) {
      bool c_kappa = true;
      for (int i = 0; i < sl.kappa; ++i) c_kappa &= ((x >> i) & 1u) != 0;
      c_kappa &= sl.kappa < 12 && ((x >> sl.kappa) & 1u) == 0;
      EXPECT_EQ(c_kappa, leading == sl.kappa) << x;
    }
  }
}

TEST(Sublists, DeltaPerSublistBounded) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_6_15543(64));
  const SublistSplit split = split_by_kappa(enumerate_leaves(m));
  for (const Sublist& sl : split.sublists) {
    EXPECT_LE(sl.delta, split.delta);
    EXPECT_LE(sl.kappa + sl.delta, m.precision() - 1);
    for (const Leaf& leaf : sl.leaves) {
      EXPECT_EQ(leaf.kappa, sl.kappa);
      EXPECT_LE(leaf.j, sl.delta);
    }
  }
}

TEST(Sublists, TruthTablesHaveNoConflicts) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(32));
  const SublistSplit split = split_by_kappa(enumerate_leaves(m));
  for (const Sublist& sl : split.sublists) {
    if (sl.leaves.empty()) continue;
    for (int iota = 0; iota < split.num_output_bits; ++iota)
      EXPECT_NO_THROW(sl.output_bit_table(iota));
    const auto vt = sl.valid_table();
    // valid table is fully specified (no DC).
    for (std::uint64_t mm = 0; mm < vt.size(); ++mm)
      EXPECT_NE(vt.state(mm), bf::TruthTable::State::kDc);
  }
}

// Paper §5: Delta values for the four parameter sets. Our probability
// pipeline yields slightly different constants than the authors' (see
// EXPERIMENTS.md); the invariant that matters is that Delta stays small.
TEST(Theorem1, DeltaGoldensAtFullPrecision) {
  struct Golden {
    gauss::GaussianParams p;
    int delta;
    int paper;
  };
  const Golden gold[] = {
      {gauss::GaussianParams::sigma_1(128), 3, 4},
      {gauss::GaussianParams::sigma_2(128), 5, 4},
      {gauss::GaussianParams::sigma_6_15543(128), 6, 6},
      {gauss::GaussianParams::sigma_215(128), 11, 15},
  };
  for (const auto& g : gold) {
    const gauss::ProbMatrix m(g.p);
    const LeafList list = enumerate_leaves(m);
    EXPECT_EQ(list.delta, g.delta) << g.p.describe();
    EXPECT_LE(list.delta, g.paper + 1) << "Delta should stay paper-small";
  }
}

class SamplerEquivalence
    : public ::testing::TestWithParam<std::tuple<int, MinimizeMode>> {};

TEST_P(SamplerEquivalence, NetlistMatchesReferenceExhaustively) {
  const auto [case_idx, mode] = GetParam();
  Case c = small_cases()[static_cast<std::size_t>(case_idx)];
  // Exhaustive check needs tiny precision.
  c.params.precision = 14;
  const gauss::ProbMatrix m(c.params);
  const ddg::KnuthYaoSampler ref(m);
  SynthesisConfig cfg;
  cfg.mode = mode;
  const SynthesizedSampler synth = synthesize(m, cfg);
  const int mbits = synth.num_output_bits;
  for (std::uint32_t x = 0; x < (1u << 14); ++x) {
    std::vector<int> bits(14);
    for (int i = 0; i < 14; ++i) bits[static_cast<std::size_t>(i)] = (x >> i) & 1u;
    const auto out = synth.netlist.eval_bits(bits);
    const auto walk = ref.walk_bits(bits);
    ASSERT_EQ(out[static_cast<std::size_t>(mbits)] != 0, walk.has_value())
        << c.name << " x=" << x;
    if (walk) {
      std::uint32_t v = 0;
      for (int iota = 0; iota < mbits; ++iota)
        v |= static_cast<std::uint32_t>(out[static_cast<std::size_t>(iota)]) << iota;
      ASSERT_EQ(v, walk->value) << c.name << " x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SamplerEquivalence,
    ::testing::Combine(::testing::Values(0, 2, 4),
                       ::testing::Values(MinimizeMode::kExact,
                                         MinimizeMode::kHeuristic,
                                         MinimizeMode::kMergeOnly,
                                         MinimizeMode::kNone)));

TEST(SamplerEquivalence, FlatMatchesSplitAtFullPrecision) {
  // Both samplers on the same random words must emit identical batches.
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  BitslicedSampler split(synthesize(m, {}));
  BitslicedSampler flat(synthesize_flat(m, {}));
  prng::ChaCha20Source rng_a(3), rng_b(3);
  std::int32_t out_a[64], out_b[64];
  for (int batch = 0; batch < 50; ++batch) {
    const auto va = split.sample_batch(rng_a, out_a);
    const auto vb = flat.sample_batch(rng_b, out_b);
    EXPECT_EQ(va, vb);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(out_a[i], out_b[i]) << batch;
  }
}

TEST(BitslicedSampler, ChiSquareAgainstMatrix) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_6_15543(64));
  BitslicedSampler s(synthesize(m, {}));
  prng::ChaCha20Source rng(11);
  stats::Histogram h;
  std::int32_t batch[64];
  for (int it = 0; it < 6000; ++it) {
    const std::uint64_t valid = s.sample_batch(rng, batch);
    for (int lane = 0; lane < 64; ++lane)
      if ((valid >> lane) & 1u) h.add(batch[lane]);
  }
  const auto res = stats::chi_square_signed(h, m);
  EXPECT_GT(res.p_value, 1e-6) << "chi2=" << res.statistic;
}

TEST(BitslicedSampler, ValidMaskAllOnesAtCryptoPrecision) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  BitslicedSampler s(synthesize(m, {}));
  prng::ChaCha20Source rng(13);
  std::uint32_t mags[64];
  for (int it = 0; it < 200; ++it)
    EXPECT_EQ(s.sample_magnitudes(rng, mags), ~std::uint64_t(0));
}

TEST(BitslicedSampler, WordsPerBatchAccounting) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  BitslicedSampler s(synthesize(m, {}));
  EXPECT_EQ(s.words_per_batch(), 129);  // n + sign word
}

TEST(BufferedSampler, ServesIndividualSamples) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(64));
  BufferedBitslicedSampler s(synthesize(m, {}));
  prng::SplitMix64Source rng(17);
  double sum_sq = 0;
  const int k = 20000;
  for (int i = 0; i < k; ++i) {
    const double v = s.sample(rng);
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum_sq / k, 4.0, 0.2);
  EXPECT_TRUE(s.constant_time());
}

TEST(Synthesis, StatsAreFilled) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(64));
  const auto s = synthesize(m, {});
  EXPECT_GT(s.stats.num_leaves, 0u);
  EXPECT_GT(s.stats.netlist_ops, 0u);
  EXPECT_LE(s.stats.cubes_minimized, s.stats.cubes_raw);
  EXPECT_TRUE(s.stats.all_exact);
  EXPECT_NE(s.stats.describe().find("Delta"), std::string::npos);
}

TEST(Synthesis, SplitBeatsFlatOnOpCount) {
  // The headline claim of the paper, in netlist-op form.
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_6_15543(128));
  const auto split = synthesize(m, {});
  const auto flat = synthesize_flat(m, {});
  EXPECT_LT(split.stats.netlist_ops, flat.stats.netlist_ops);
}

TEST(Synthesis, CseShrinksNetlist) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(48));
  SynthesisConfig with, without;
  without.cse = false;
  EXPECT_LT(synthesize(m, with).stats.netlist_ops,
            synthesize(m, without).stats.netlist_ops);
}

}  // namespace
}  // namespace cgs::ct
