// DDG tree structure (Fig. 1) and the Alg.1 column-scanning sampler.

#include <gtest/gtest.h>

#include <cmath>

#include "ddg/ddgtree.h"
#include "ddg/kysampler.h"
#include "prng/splitmix.h"

namespace cgs::ddg {
namespace {

TEST(DdgTree, StructuralInvariants) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(24));
  const DdgTree tree(m);
  ASSERT_FALSE(tree.levels().empty());
  std::size_t internal_prev = 1;
  std::size_t leaves = 0;
  for (const auto& lvl : tree.levels()) {
    EXPECT_EQ(lvl.node_count, 2 * internal_prev);
    EXPECT_EQ(lvl.leaf_values.size(),
              static_cast<std::size_t>(m.column_weight(lvl.level)));
    internal_prev = lvl.internal_count();
    leaves += lvl.leaf_values.size();
  }
  EXPECT_EQ(tree.total_leaves(), leaves);
  // Truncated Gaussian never completes (deficit > 0).
  EXPECT_FALSE(tree.complete());
}

TEST(DdgTree, LeafValuesAreHighestSetRowsFirst) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(24));
  const DdgTree tree(m);
  for (const auto& lvl : tree.levels()) {
    // Values within a level strictly decrease (scanned MAXROW down).
    for (std::size_t d = 1; d < lvl.leaf_values.size(); ++d)
      EXPECT_GT(lvl.leaf_values[d - 1], lvl.leaf_values[d]);
    for (std::uint32_t v : lvl.leaf_values)
      EXPECT_EQ(m.bit(v, lvl.level), 1);
  }
}

TEST(DdgTree, LeafMassEqualsOneMinusDeficit) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_1(40));
  const DdgTree tree(m);
  double mass = 0.0;
  for (const auto& lvl : tree.levels())
    mass += static_cast<double>(lvl.leaf_values.size()) *
            std::pow(0.5, lvl.level + 1);
  EXPECT_NEAR(mass, 1.0 - m.deficit_double(), 1e-12);
}

TEST(DdgTree, CompleteTreeForDyadicDistribution) {
  // A hand-built complete distribution: p = {1/2, 1/4, 1/4} has an exact
  // finite DDG tree. Emulate via a matrix-like table: use sigma_1 at tiny
  // precision where completeness cannot occur; instead verify to_string.
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_1(12));
  const DdgTree tree(m);
  EXPECT_NE(tree.to_string().find("L0"), std::string::npos);
}

TEST(KnuthYao, WalkBitsAgreesWithStreamWalk) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(20));
  const KnuthYaoSampler s(m);
  prng::SplitMix64Source rng(5);
  for (int it = 0; it < 2000; ++it) {
    // Pre-draw 20 bits, run both paths on identical input.
    std::vector<int> bits(20);
    for (auto& b : bits) b = rng.next_bit();
    DeterministicBitSource replay(bits);
    const WalkResult w = s.walk(replay);
    const auto w2 = s.walk_bits(bits);
    EXPECT_EQ(w.hit, w2.has_value());
    if (w2) {
      EXPECT_EQ(w.value, w2->value);
      EXPECT_EQ(w.bits_used, w2->bits_used);
    }
  }
}

TEST(KnuthYao, SampleMagnitudeAlwaysInSupport) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(32));
  const KnuthYaoSampler s(m);
  prng::SplitMix64Source rng(6);
  for (int it = 0; it < 5000; ++it) {
    const std::uint32_t v = s.sample_magnitude(rng);
    EXPECT_LT(v, m.rows());
  }
}

TEST(KnuthYao, SignedSamplesSymmetricish) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(32));
  const KnuthYaoSampler s(m);
  prng::SplitMix64Source rng(7);
  std::int64_t sum = 0;
  const int kSamples = 20000;
  for (int it = 0; it < kSamples; ++it) sum += s.sample(rng);
  // Mean ~ N(0, sigma/sqrt(k)): |mean| < 5 * 2/sqrt(20000) ~ 0.07.
  EXPECT_LT(std::fabs(static_cast<double>(sum) / kSamples), 0.08);
}

TEST(KnuthYao, EmpiricalVarianceMatchesSigma) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(48));
  const KnuthYaoSampler s(m);
  prng::SplitMix64Source rng(8);
  double sum_sq = 0;
  const int kSamples = 40000;
  for (int it = 0; it < kSamples; ++it) {
    const double v = s.sample(rng);
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum_sq / kSamples, 4.0, 0.15);  // sigma^2 = 4
}

TEST(KnuthYao, RestartsAreRareAtHighPrecision) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(64));
  const KnuthYaoSampler s(m);
  prng::SplitMix64Source rng(9);
  for (int it = 0; it < 10000; ++it) (void)s.sample_magnitude(rng);
  EXPECT_EQ(s.restarts(), 0u);
}

TEST(KnuthYao, FirstLevelsMatchHandComputedWalk) {
  // sigma=2, n=16: h_0 = 0 so no leaf can be hit with one bit; every
  // 1-bit prefix stays internal.
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(16));
  const KnuthYaoSampler s(m);
  EXPECT_FALSE(s.walk_bits({0}).has_value());
  EXPECT_FALSE(s.walk_bits({1}).has_value());
}

}  // namespace
}  // namespace cgs::ddg
