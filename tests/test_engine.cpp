// Sampler engine subsystem: registry memoization, disk-cache hierarchy
// (synthesize -> persist -> warm load), corruption fallback, and the
// multi-threaded batch sampling service.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <thread>

#include "ct/bitsliced_sampler.h"
#include "ct/compiled_sampler.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "prng/chacha20.h"
#include "serial/serial.h"

namespace cgs::engine {
namespace {

gauss::GaussianParams test_params() {
  return gauss::GaussianParams::sigma_2(64);
}

std::string fresh_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + "cgs-engine-" + name + "-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(CacheKey, EncodesEveryField) {
  const auto base = test_params();
  const ct::SynthesisConfig cfg;
  const std::string k = cache_key(base, cfg);

  auto expect_differs = [&](const gauss::GaussianParams& p,
                            const ct::SynthesisConfig& c) {
    EXPECT_NE(cache_key(p, c), k);
  };

  auto p = base;
  p.sigma_num = 3;
  expect_differs(p, cfg);
  p = base;
  p.precision = 65;
  expect_differs(p, cfg);
  p = base;
  p.tau = 14;
  expect_differs(p, cfg);
  p = base;
  p.normalization = gauss::Normalization::kContinuous;
  expect_differs(p, cfg);
  p = base;
  p.rounding = gauss::Rounding::kNearest;
  expect_differs(p, cfg);

  auto c = cfg;
  c.mode = ct::MinimizeMode::kHeuristic;
  expect_differs(base, c);
  c = cfg;
  c.emit_valid_bit = false;
  expect_differs(base, c);
  c = cfg;
  c.cse = false;
  expect_differs(base, c);
  c = cfg;
  c.exact_max_vars = 10;
  expect_differs(base, c);

  // Filename-safe.
  EXPECT_EQ(k.find('/'), std::string::npos);
  EXPECT_EQ(k.find(' '), std::string::npos);
}

TEST(Registry, RepeatLookupReturnsSameInstance) {
  SamplerRegistry reg({.cache_dir = fresh_dir("memo"), .use_disk = false});
  SamplerRegistry::Source src1, src2;
  auto a = reg.get(test_params(), {}, &src1);
  auto b = reg.get(test_params(), {}, &src2);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(src1, SamplerRegistry::Source::kSynthesized);
  EXPECT_EQ(src2, SamplerRegistry::Source::kMemory);

  // A different config is a different sampler.
  ct::SynthesisConfig heuristic;
  heuristic.mode = ct::MinimizeMode::kHeuristic;
  auto c = reg.get(test_params(), heuristic);
  EXPECT_NE(a.get(), c.get());
}

TEST(Registry, PersistsAndWarmLoadsAcrossInstances) {
  const std::string dir = fresh_dir("warm");
  SamplerRegistry::Source src;

  SamplerRegistry cold({.cache_dir = dir});
  auto synthesized = cold.get(test_params(), {}, &src);
  EXPECT_EQ(src, SamplerRegistry::Source::kSynthesized);
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + cache_key(test_params()) +
                                      ".cgs"));

  // A second registry (a "new process") loads from disk, not synthesis.
  SamplerRegistry warm({.cache_dir = dir});
  auto loaded = warm.get(test_params(), {}, &src);
  EXPECT_EQ(src, SamplerRegistry::Source::kDisk);
  EXPECT_NE(synthesized.get(), loaded.get());  // distinct memo spaces

  // The cache-loaded sampler's output stream is bit-identical to the
  // freshly synthesized one under the same PRNG seed.
  ct::BitslicedSampler a(*synthesized);
  ct::BitslicedSampler b(*loaded);
  prng::ChaCha20Source rng_a(99), rng_b(99);
  std::int32_t batch_a[64], batch_b[64];
  for (int it = 0; it < 100; ++it) {
    ASSERT_EQ(a.sample_batch(rng_a, batch_a), b.sample_batch(rng_b, batch_b));
    for (int lane = 0; lane < 64; ++lane)
      ASSERT_EQ(batch_a[lane], batch_b[lane]) << it << ":" << lane;
  }
}

TEST(Registry, CorruptedCacheFallsBackToSynthesisAndHeals) {
  const std::string dir = fresh_dir("corrupt");
  const std::string path = dir + "/" + cache_key(test_params()) + ".cgs";
  SamplerRegistry::Source src;

  {  // Seed the cache, then corrupt one payload byte.
    SamplerRegistry reg({.cache_dir = dir});
    reg.get(test_params());
    auto bytes = *serial::read_file(path);
    bytes[bytes.size() - 3] ^= 0x40;
    ASSERT_TRUE(serial::write_file_atomic(path, bytes));
  }
  {  // Corruption is detected (checksum), silently re-synthesized...
    SamplerRegistry reg({.cache_dir = dir});
    auto s = reg.get(test_params(), {}, &src);
    EXPECT_EQ(src, SamplerRegistry::Source::kSynthesized);
    ASSERT_NE(s, nullptr);
  }
  {  // ...and the rewritten file serves the next instance warm.
    SamplerRegistry reg({.cache_dir = dir});
    reg.get(test_params(), {}, &src);
    EXPECT_EQ(src, SamplerRegistry::Source::kDisk);
  }
}

TEST(Registry, TruncatedAndForeignFilesRejected) {
  const std::string dir = fresh_dir("trunc");
  const std::string path = dir + "/" + cache_key(test_params()) + ".cgs";
  SamplerRegistry::Source src;

  {  // Truncated frame.
    SamplerRegistry reg({.cache_dir = dir});
    reg.get(test_params());
    auto bytes = *serial::read_file(path);
    bytes.resize(bytes.size() / 2);
    ASSERT_TRUE(serial::write_file_atomic(path, bytes));
    SamplerRegistry reg2({.cache_dir = dir});
    reg2.get(test_params(), {}, &src);
    EXPECT_EQ(src, SamplerRegistry::Source::kSynthesized);
  }
  {  // A file that is not a CGS frame at all (bad magic).
    const std::vector<std::uint8_t> junk = {'n', 'o', 't', ' ', 'c', 'g', 's'};
    ASSERT_TRUE(serial::write_file_atomic(path, junk));
    SamplerRegistry reg({.cache_dir = dir});
    reg.get(test_params(), {}, &src);
    EXPECT_EQ(src, SamplerRegistry::Source::kSynthesized);
  }
}

TEST(Registry, MisfiledCacheEntryIsAMiss) {
  // A structurally valid frame sitting under the WRONG key's filename (a
  // sync script or manual rename) must not be served: the frame's embedded
  // (params, config) binding disagrees with the requested key.
  const std::string dir = fresh_dir("misfile");
  SamplerRegistry::Source src;
  {
    SamplerRegistry reg({.cache_dir = dir});
    reg.get(test_params());
  }
  auto other = gauss::GaussianParams::sigma_1(64);
  std::filesystem::copy_file(dir + "/" + cache_key(test_params()) + ".cgs",
                             dir + "/" + cache_key(other) + ".cgs");
  SamplerRegistry reg({.cache_dir = dir});
  auto s = reg.get(other, {}, &src);
  EXPECT_EQ(src, SamplerRegistry::Source::kSynthesized);
  EXPECT_EQ(s->precision, other.precision);
}

TEST(Registry, ConcurrentFirstLookupSynthesizesOnce) {
  SamplerRegistry reg({.cache_dir = fresh_dir("race"), .use_disk = false});
  constexpr int kThreads = 8;
  std::vector<SamplerRegistry::SamplerPtr> results(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back(
        [&, i] { results[static_cast<std::size_t>(i)] = reg.get(test_params()); });
  for (auto& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i)
    EXPECT_EQ(results[0].get(), results[static_cast<std::size_t>(i)].get());
}

// ----------------------------------------------------------------- engine ---

class EngineBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(EngineBackends, StatisticalSanityAndDeterminism) {
  const Backend backend = GetParam();
  if (backend == Backend::kCompiled && !ct::CompiledKernel::is_available())
    GTEST_SKIP() << "no host compiler";

  SamplerRegistry reg({.cache_dir = fresh_dir("eng"), .use_disk = false});
  auto synth = reg.get(test_params());

  SamplerEngine engine(synth,
                       {.backend = backend, .num_threads = 3, .root_seed = 5});
  EXPECT_EQ(engine.backend(), backend);
  EXPECT_EQ(engine.num_threads(), 3);

  const auto v = engine.sample(120000);
  ASSERT_EQ(v.size(), 120000u);
  double sum = 0, sum_sq = 0;
  for (std::int32_t x : v) {
    sum += x;
    sum_sq += static_cast<double>(x) * x;
  }
  const double mean = sum / static_cast<double>(v.size());
  const double sigma =
      std::sqrt(sum_sq / static_cast<double>(v.size()) - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(sigma, 2.0, 0.05);

  // Same options -> bit-identical output, worker streams included.
  SamplerEngine replay(synth,
                       {.backend = backend, .num_threads = 3, .root_seed = 5});
  EXPECT_EQ(replay.sample(120000), v);

  // Different root seed -> different stream.
  SamplerEngine other(synth,
                      {.backend = backend, .num_threads = 3, .root_seed = 6});
  EXPECT_NE(other.sample(120000), v);

  EXPECT_EQ(engine.total_samples(), 120000u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, EngineBackends,
                         ::testing::Values(Backend::kCompiled, Backend::kWide,
                                           Backend::kBitsliced));

TEST(Engine, AutoSelectsSomeRealBackend) {
  SamplerRegistry reg({.cache_dir = fresh_dir("auto"), .use_disk = false});
  SamplerEngine engine(reg.get(test_params()), {.num_threads = 1});
  EXPECT_NE(engine.backend(), Backend::kAuto);
  if (ct::CompiledKernel::is_available())
    EXPECT_EQ(engine.backend(), Backend::kCompiled);
  const auto v = engine.sample(1000);
  EXPECT_EQ(v.size(), 1000u);
}

TEST(Engine, SmallAndUnevenRequests) {
  SamplerRegistry reg({.cache_dir = fresh_dir("small"), .use_disk = false});
  auto synth = reg.get(test_params());
  SamplerEngine engine(synth, {.backend = Backend::kBitsliced,
                               .num_threads = 4, .root_seed = 11});
  EXPECT_TRUE(engine.sample(0).empty());
  EXPECT_EQ(engine.sample(1).size(), 1u);   // below one batch: inline path
  EXPECT_EQ(engine.sample(63).size(), 63u);
  EXPECT_EQ(engine.sample(1001).size(), 1001u);  // uneven split across 4
}

TEST(Engine, ConcurrentBulkCallsAreSerializedSafely) {
  SamplerRegistry reg({.cache_dir = fresh_dir("conc"), .use_disk = false});
  auto synth = reg.get(test_params());
  SamplerEngine engine(synth, {.backend = Backend::kBitsliced,
                               .num_threads = 2, .root_seed = 3});
  std::vector<std::thread> callers;
  std::vector<std::vector<std::int32_t>> results(4);
  for (int i = 0; i < 4; ++i)
    callers.emplace_back([&, i] {
      results[static_cast<std::size_t>(i)] = engine.sample(5000);
    });
  for (auto& t : callers) t.join();
  for (const auto& r : results) EXPECT_EQ(r.size(), 5000u);
  EXPECT_EQ(engine.total_samples(), 20000u);
}

}  // namespace
}  // namespace cgs::engine
