// Negacyclic FFT and NTT: roundtrips, agreement with schoolbook ring
// multiplication, split/merge identities, adjoint semantics.

#include <gtest/gtest.h>

#include <random>

#include "falcon/fft.h"
#include "falcon/ntt.h"

namespace cgs::falcon {
namespace {

std::vector<double> random_poly(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> d(-10.0, 10.0);
  std::vector<double> p(n);
  for (auto& c : p) c = d(gen);
  return p;
}

// c = a*b mod x^n + 1 over the reals.
std::vector<double> negacyclic_schoolbook(const std::vector<double>& a,
                                          const std::vector<double>& b) {
  const std::size_t n = a.size();
  std::vector<double> c(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const double p = a[i] * b[j];
      if (i + j < n)
        c[i + j] += p;
      else
        c[i + j - n] -= p;
    }
  return c;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, RoundTrip) {
  const auto p = random_poly(GetParam(), 1);
  const auto back = ifft(fft(p));
  ASSERT_EQ(back.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i)
    EXPECT_NEAR(back[i], p[i], 1e-9);
}

TEST_P(FftSizes, MulMatchesSchoolbook) {
  const auto a = random_poly(GetParam(), 2);
  const auto b = random_poly(GetParam(), 3);
  const auto via_fft = ifft(mul_fft(fft(a), fft(b)));
  const auto direct = negacyclic_schoolbook(a, b);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(via_fft[i], direct[i], 1e-7) << i;
}

TEST_P(FftSizes, SplitMergeRoundTrip) {
  if (GetParam() < 2) GTEST_SKIP();
  const CVec f = fft(random_poly(GetParam(), 4));
  CVec f0, f1;
  split_fft(f, f0, f1);
  const CVec back = merge_fft(f0, f1);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(back[i].real(), f[i].real(), 1e-9);
    EXPECT_NEAR(back[i].imag(), f[i].imag(), 1e-9);
  }
}

TEST_P(FftSizes, SplitExtractsEvenOddCoefficients) {
  if (GetParam() < 2) GTEST_SKIP();
  const auto p = random_poly(GetParam(), 5);
  CVec f0, f1;
  split_fft(fft(p), f0, f1);
  const auto even = ifft(f0);
  const auto odd = ifft(f1);
  for (std::size_t i = 0; i < p.size() / 2; ++i) {
    EXPECT_NEAR(even[i], p[2 * i], 1e-9);
    EXPECT_NEAR(odd[i], p[2 * i + 1], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Pow2, FftSizes,
                         ::testing::Values(1, 2, 4, 16, 64, 256, 1024));

TEST(Fft, EvaluatesAtOddRoots) {
  // f(x) = x: spectrum must be exactly the roots.
  std::vector<double> x = {0, 1, 0, 0};
  const CVec s = fft(x);
  for (std::size_t k = 0; k < 4; ++k) {
    const cplx z = root_of_unity(4, k);
    EXPECT_NEAR(s[k].real(), z.real(), 1e-12);
    EXPECT_NEAR(s[k].imag(), z.imag(), 1e-12);
  }
}

TEST(Fft, AdjointIsConjugateTranspose) {
  // <a, b> = (1/n) sum a_k conj(b_k); adj in FFT is plain conjugation and
  // corresponds to x -> x^{-1} on coefficients: check a * adj(a) has real
  // non-negative spectrum.
  const auto a = random_poly(32, 6);
  const CVec s = mul_fft(fft(a), adj_fft(fft(a)));
  for (const cplx& v : s) {
    EXPECT_NEAR(v.imag(), 0.0, 1e-9);
    EXPECT_GE(v.real(), -1e-9);
  }
}

TEST(Ntt, ForwardInverseRoundTrip) {
  for (std::size_t n : {4u, 16u, 256u, 1024u}) {
    const NttContext ntt(n);
    std::mt19937_64 gen(n);
    std::vector<std::uint32_t> a(n);
    for (auto& v : a) v = static_cast<std::uint32_t>(gen() % kQ);
    auto b = a;
    ntt.forward(b);
    ntt.inverse(b);
    EXPECT_EQ(a, b) << n;
  }
}

TEST(Ntt, FastBitReversedPathMatchesReference) {
  // The Shoup fast path (forward_br / pointwise_shoup / inverse_br, the
  // VerificationService hot loop) must compute exactly the reference
  // multiply(), bit-reversed internal ordering and all.
  for (std::size_t n : {4u, 16u, 64u, 512u, 1024u}) {
    const NttContext ntt(n);
    std::mt19937_64 gen(n + 1);
    std::vector<std::uint32_t> a(n), b(n);
    for (auto& v : a) v = static_cast<std::uint32_t>(gen() % kQ);
    for (auto& v : b) v = static_cast<std::uint32_t>(gen() % kQ);

    // Round trip alone.
    auto r = a;
    ntt.forward_br(r);
    ntt.inverse_br(r);
    EXPECT_EQ(r, a) << n;

    // Full product against the reference transform.
    auto x = a, w = b;
    ntt.forward_br(x);
    ntt.forward_br(w);
    std::vector<std::uint32_t> ws(n);
    for (std::size_t i = 0; i < n; ++i) ws[i] = NttContext::shoup_factor(w[i]);
    ntt.pointwise_shoup(x, w, ws);
    ntt.inverse_br(x);
    EXPECT_EQ(x, ntt.multiply(a, b)) << n;
  }
}

TEST(Ntt, MultiplyMatchesSchoolbookModQ) {
  const std::size_t n = 32;
  const NttContext ntt(n);
  std::mt19937_64 gen(5);
  std::vector<std::uint32_t> a(n), b(n);
  for (auto& v : a) v = static_cast<std::uint32_t>(gen() % kQ);
  for (auto& v : b) v = static_cast<std::uint32_t>(gen() % kQ);
  const auto c = ntt.multiply(a, b);
  // Schoolbook negacyclic mod q.
  std::vector<std::int64_t> ref(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const std::int64_t p = static_cast<std::int64_t>(a[i]) * b[j] % kQ;
      if (i + j < n)
        ref[i + j] = (ref[i + j] + p) % kQ;
      else
        ref[i + j - n] = (ref[i + j - n] - p % kQ + kQ) % kQ;
    }
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(c[i], static_cast<std::uint32_t>(ref[i])) << i;
}

TEST(Ntt, InvertRecoversIdentity) {
  const std::size_t n = 64;
  const NttContext ntt(n);
  std::mt19937_64 gen(9);
  std::vector<std::uint32_t> a(n);
  for (auto& v : a) v = static_cast<std::uint32_t>(gen() % kQ);
  std::vector<std::uint32_t> inv;
  if (!ntt.try_invert(a, inv)) GTEST_SKIP() << "non-invertible draw";
  const auto prod = ntt.multiply(a, inv);
  EXPECT_EQ(prod[0], 1u);
  for (std::size_t i = 1; i < n; ++i) EXPECT_EQ(prod[i], 0u);
}

TEST(Ntt, NonInvertibleDetected) {
  const std::size_t n = 16;
  const NttContext ntt(n);
  std::vector<std::uint32_t> zero(n, 0);
  std::vector<std::uint32_t> inv;
  EXPECT_FALSE(ntt.try_invert(zero, inv));
}

TEST(Ntt, CenterModQ) {
  EXPECT_EQ(center_mod_q(0), 0);
  EXPECT_EQ(center_mod_q(1), 1);
  EXPECT_EQ(center_mod_q(kQ - 1), -1);
  EXPECT_EQ(center_mod_q(6144), 6144);
  EXPECT_EQ(center_mod_q(6145), -6144);
  EXPECT_EQ(to_mod_q(-1), kQ - 1);
  EXPECT_EQ(to_mod_q(-12290), kQ - 1);
}

}  // namespace
}  // namespace cgs::falcon
