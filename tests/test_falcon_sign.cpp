// Signing and verification end to end, with every base sampler of Table 1,
// plus SamplerZ distribution checks, hash-to-point, and the codec.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "cdt/cdt_samplers.h"
#include "ct/bitsliced_sampler.h"
#include "ct/buffered.h"
#include "falcon/codec.h"
#include "falcon/sign.h"
#include "falcon/verify.h"
#include "prng/chacha20.h"
#include "prng/splitmix.h"

namespace cgs::falcon {
namespace {

struct Fixture {
  gauss::ProbMatrix matrix{gauss::GaussianParams::sigma_2(128)};
  cdt::CdtTable table{matrix};
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

const KeyPair& shared_key() {
  static const KeyPair kp = [] {
    prng::ChaCha20Source rng(321);
    return keygen(FalconParams::for_degree(64), rng);
  }();
  return kp;
}

class SignWithEachSampler : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<IntSampler> make_sampler() {
    auto& f = fixture();
    switch (GetParam()) {
      case 0: return std::make_unique<cdt::CdtByteScanSampler>(f.table);
      case 1: return std::make_unique<cdt::CdtBinarySearchSampler>(f.table);
      case 2: return std::make_unique<cdt::CdtLinearCtSampler>(f.table);
      default:
        return std::make_unique<ct::BufferedBitslicedSampler>(
            ct::synthesize(f.matrix, {}));
    }
  }
};

TEST_P(SignWithEachSampler, SignVerifyRoundTrip) {
  const KeyPair& kp = shared_key();
  auto base = make_sampler();
  Signer signer(kp, *base);
  Verifier verifier(kp.h, kp.params);
  prng::ChaCha20Source rng(777 + GetParam());
  for (int i = 0; i < 5; ++i) {
    const std::string msg = "message #" + std::to_string(i);
    const Signature sig = signer.sign(msg, rng);
    EXPECT_TRUE(verifier.verify(msg, sig)) << base->name();
    EXPECT_FALSE(verifier.verify(msg + "!", sig)) << base->name();
  }
}

TEST_P(SignWithEachSampler, TamperedSignatureRejected) {
  const KeyPair& kp = shared_key();
  auto base = make_sampler();
  Signer signer(kp, *base);
  Verifier verifier(kp.h, kp.params);
  prng::ChaCha20Source rng(99);
  Signature sig = signer.sign("payload", rng);
  sig.s1[3] += 2500;  // push the norm out of bounds
  EXPECT_FALSE(verifier.verify("payload", sig));
}

INSTANTIATE_TEST_SUITE_P(Samplers, SignWithEachSampler,
                         ::testing::Values(0, 1, 2, 3));

TEST(Sign, StatsAccumulate) {
  const KeyPair& kp = shared_key();
  auto& f = fixture();
  cdt::CdtByteScanSampler base(f.table);
  Signer signer(kp, base);
  prng::ChaCha20Source rng(5);
  SignStats stats;
  (void)signer.sign("m", rng, &stats);
  EXPECT_GE(stats.attempts, 1u);
  EXPECT_GE(stats.base_samples, 2 * kp.params.n);  // >= one draw per coord
}

TEST(Sign, SignatureNormWellBelowBound) {
  const KeyPair& kp = shared_key();
  auto& f = fixture();
  cdt::CdtBinarySearchSampler base(f.table);
  Signer signer(kp, base);
  prng::ChaCha20Source rng(6);
  const Signature sig = signer.sign("norm test", rng);
  // s1 alone must respect the bound; typical norms sit well inside.
  EXPECT_LT(norm_sq(sig.s1), kp.params.bound_sq());
}

TEST(Tree, LeafSigmasInsideEnvelope) {
  const FalconTree tree(shared_key());
  EXPECT_GE(tree.min_leaf_sigma(), shared_key().params.sigma_min);
  EXPECT_LE(tree.max_leaf_sigma(), shared_key().params.sigma_max);
}

TEST(SamplerZ, MatchesTargetMoments) {
  auto& f = fixture();
  cdt::CdtBinarySearchSampler base(f.table);
  SamplerZ sz(base, 2.0);
  prng::SplitMix64Source rng(8);
  const double c = 3.3, sigma = 1.5;
  double sum = 0, sum_sq = 0;
  const int k = 40000;
  for (int i = 0; i < k; ++i) {
    const double z = sz.sample(c, sigma, rng);
    sum += z;
    sum_sq += z * z;
  }
  const double mean = sum / k;
  const double var = sum_sq / k - mean * mean;
  EXPECT_NEAR(mean, c, 0.04);
  EXPECT_NEAR(var, sigma * sigma, 0.1);
  EXPECT_GT(sz.base_calls(), static_cast<std::uint64_t>(k));
}

TEST(SamplerZ, NegativeCentersWork) {
  auto& f = fixture();
  cdt::CdtLinearCtSampler base(f.table);
  SamplerZ sz(base, 2.0);
  prng::SplitMix64Source rng(9);
  double sum = 0;
  const int k = 20000;
  for (int i = 0; i < k; ++i) sum += sz.sample(-7.8, 1.3, rng);
  EXPECT_NEAR(sum / k, -7.8, 0.05);
}

TEST(SamplerZ, RejectsSigmaAboveBase) {
  auto& f = fixture();
  cdt::CdtLinearCtSampler base(f.table);
  SamplerZ sz(base, 2.0);
  prng::SplitMix64Source rng(10);
  EXPECT_THROW((void)sz.sample(0.0, 2.5, rng), Error);
}

TEST(HashToPoint, DeterministicAndUniform) {
  std::array<std::uint8_t, 40> nonce{};
  nonce[0] = 7;
  const auto a = hash_to_point(nonce, "msg", 256);
  const auto b = hash_to_point(nonce, "msg", 256);
  EXPECT_EQ(a, b);
  const auto c = hash_to_point(nonce, "msh", 256);
  EXPECT_NE(a, c);
  for (std::uint32_t v : a) EXPECT_LT(v, kQ);
  // Rough uniformity: mean near q/2.
  double mean = 0;
  const auto big = hash_to_point(nonce, "uniformity", 1024);
  for (std::uint32_t v : big) mean += v;
  mean /= 1024;
  EXPECT_NEAR(mean, kQ / 2.0, 450);
}

TEST(Codec, RoundTripRandomSignatures) {
  std::mt19937_64 gen(14);
  std::normal_distribution<double> d(0.0, 166.0);
  for (int trial = 0; trial < 20; ++trial) {
    IPoly s1(256);
    for (auto& c : s1)
      c = static_cast<std::int32_t>(std::lround(d(gen)));
    const auto bytes = compress_s1(s1);
    const auto back = decompress_s1(bytes, 256);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s1);
    // Compression actually compresses vs 2 bytes/coeff raw.
    EXPECT_LT(bytes.size(), 256 * 2);
  }
}

TEST(Codec, MalformedInputRejected) {
  EXPECT_FALSE(decompress_s1({}, 4).has_value());
  EXPECT_FALSE(decompress_s1({0xff, 0xff}, 64).has_value());
}

TEST(Codec, BitIoRoundTrip) {
  BitWriter w;
  w.put_bits(0b1011001, 7);
  w.put(1);
  w.put_bits(0x5a5, 12);
  BitReader r(w.bytes());
  EXPECT_EQ(r.get_bits(7), 0b1011001u);
  EXPECT_EQ(r.get(), 1);
  EXPECT_EQ(r.get_bits(12), 0x5a5u);
}

TEST(Verify, WrongKeyRejects) {
  const KeyPair& kp = shared_key();
  prng::ChaCha20Source rng(15);
  const KeyPair other = keygen(FalconParams::for_degree(64), rng);
  auto& f = fixture();
  cdt::CdtByteScanSampler base(f.table);
  Signer signer(kp, base);
  const Signature sig = signer.sign("key confusion", rng);
  Verifier wrong(other.h, other.params);
  EXPECT_FALSE(wrong.verify("key confusion", sig));
}

}  // namespace
}  // namespace cgs::falcon
