// BigFix fixed-point arithmetic and the high-precision exp/sqrt/pi kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "fp/bigfix.h"
#include "fp/exp.h"

namespace cgs::fp {
namespace {

constexpr double kTol = 1e-14;

TEST(BigFix, FromUintRoundTrip) {
  for (std::uint64_t v : {0ull, 1ull, 2ull, 539ull, 1234567ull}) {
    EXPECT_DOUBLE_EQ(BigFix::from_uint(v).to_double(), static_cast<double>(v));
    EXPECT_EQ(BigFix::from_uint(v).int_part(), v);
  }
}

TEST(BigFix, FromDoubleApproximates) {
  for (double v : {0.0, 0.5, 0.25, 1.75, 3.141592653589793, 123.456}) {
    EXPECT_NEAR(BigFix::from_double(v).to_double(), v, 1e-15 * (1 + v));
  }
}

TEST(BigFix, AddSubInverse) {
  const BigFix a = BigFix::from_double(1.625);
  const BigFix b = BigFix::from_double(0.375);
  EXPECT_DOUBLE_EQ(a.add(b).to_double(), 2.0);
  EXPECT_DOUBLE_EQ(a.add(b).sub(b).to_double(), a.to_double());
}

TEST(BigFix, SubNegativeThrows) {
  const BigFix a = BigFix::from_uint(1);
  const BigFix b = BigFix::from_uint(2);
  EXPECT_THROW((void)a.sub(b), Error);
}

TEST(BigFix, MulMatchesDoubles) {
  const double xs[] = {0.3, 1.7, 2.25, 0.001, 14.0};
  for (double x : xs)
    for (double y : xs)
      EXPECT_NEAR(BigFix::from_double(x).mul(BigFix::from_double(y)).to_double(),
                  x * y, kTol * (1 + x * y));
}

TEST(BigFix, MulSmallAndDivSmallInverse) {
  const BigFix a = BigFix::from_double(0.7182818);
  for (std::uint64_t k : {2ull, 3ull, 7ull, 1000ull, 615543ull}) {
    const BigFix prod = a.mul_small(k);
    EXPECT_NEAR(prod.to_double(), a.to_double() * static_cast<double>(k),
                1e-9);
    // div after mul is exact (no truncation loss).
    EXPECT_EQ(prod.div_small(k).compare(a), 0);
  }
}

TEST(BigFix, HalfIsExactShift) {
  const BigFix a = BigFix::from_uint(13);
  EXPECT_DOUBLE_EQ(a.half().to_double(), 6.5);
  EXPECT_DOUBLE_EQ(a.half().half().to_double(), 3.25);
}

TEST(BigFix, CompareTotalOrder) {
  const BigFix a = BigFix::from_double(0.5);
  const BigFix b = BigFix::from_double(0.500000001);
  EXPECT_LT(a.compare(b), 0);
  EXPECT_GT(b.compare(a), 0);
  EXPECT_EQ(a.compare(a), 0);
  EXPECT_TRUE(a < b);
}

TEST(BigFix, FracBitReadsBinaryExpansion) {
  // 0.8125 = 0.1101b
  const BigFix a = BigFix::from_double(0.8125);
  EXPECT_EQ(a.frac_bit(1), 1);
  EXPECT_EQ(a.frac_bit(2), 1);
  EXPECT_EQ(a.frac_bit(3), 0);
  EXPECT_EQ(a.frac_bit(4), 1);
  EXPECT_EQ(a.frac_bit(5), 0);
}

TEST(BigFix, TruncatedToKeepsTopBits) {
  const BigFix a = BigFix::from_double(0.8125);
  const BigFix t = a.truncated_to(2);
  EXPECT_DOUBLE_EQ(t.to_double(), 0.75);
  EXPECT_TRUE(t <= a);
  // Truncating to the full width is the identity.
  EXPECT_EQ(a.truncated_to(a.frac_bits()).compare(a), 0);
}

TEST(BigFix, ReciprocalHighPrecision) {
  for (double v : {1.5, 2.0, 539.33, 3.0, 12289.0}) {
    const BigFix r = BigFix::from_double(v).reciprocal();
    EXPECT_NEAR(r.to_double() * v, 1.0, 1e-15);
    // Verify well beyond double precision: x * (1/x) == 1 +- 2^-300.
    const BigFix prod = BigFix::from_double(v).mul(r);
    const BigFix one = BigFix::from_uint(1);
    const BigFix err = one < prod ? prod.sub(one) : one.sub(prod);
    EXPECT_EQ(err.truncated_to(290).compare(BigFix(err.frac_limbs())), 0)
        << "reciprocal error above 2^-290 for v=" << v;
  }
}

TEST(BigFix, SqrtMatchesAndIsDeep) {
  for (double v : {2.0, 5.0, 6.0, 77209.0}) {
    const BigFix s = BigFix::from_uint(static_cast<std::uint64_t>(v)).sqrt();
    EXPECT_NEAR(s.to_double(), std::sqrt(v), 1e-12);
    const BigFix sq = s.mul(s);
    const BigFix x = BigFix::from_uint(static_cast<std::uint64_t>(v));
    const BigFix err = x < sq ? sq.sub(x) : x.sub(sq);
    EXPECT_EQ(err.truncated_to(280).compare(BigFix(err.frac_limbs())), 0);
  }
}

TEST(BigFix, PiMatchesDouble) {
  EXPECT_NEAR(BigFix::pi().to_double(), 3.14159265358979323846, 1e-15);
}

TEST(Exp, MatchesStdExpAtDoublePrecision) {
  for (double x : {0.0, 0.1, 0.5, 1.0, 2.0, 10.0, 33.3, 84.5}) {
    const BigFix e = exp_neg(BigFix::from_double(x));
    EXPECT_NEAR(e.to_double(), std::exp(-x), 1e-13 * std::exp(-x) + 1e-300)
        << "x=" << x;
  }
}

TEST(Exp, FunctionalEquationHalving) {
  // exp(-x)^2 == exp(-2x) to ~2^-280.
  const BigFix x = BigFix::from_double(1.3);
  const BigFix e1 = exp_neg(x);
  const BigFix e2 = exp_neg(x.add(x));
  const BigFix sq = e1.mul(e1);
  const BigFix err = e2 < sq ? sq.sub(e2) : e2.sub(sq);
  EXPECT_EQ(err.truncated_to(280).compare(BigFix(err.frac_limbs())), 0);
}

TEST(Exp, GaussianWeightRationalSigma) {
  // sigma^2 = 4 (sigma = 2): weight(v) = exp(-v^2/8).
  for (std::uint64_t v : {0ull, 1ull, 2ull, 5ull, 13ull}) {
    const BigFix w = gaussian_weight(v, 4, 1);
    EXPECT_NEAR(w.to_double(), std::exp(-static_cast<double>(v * v) / 8.0),
                1e-13);
  }
  // Irrational sigma via sigma^2 = 5.
  const BigFix w = gaussian_weight(3, 5, 1);
  EXPECT_NEAR(w.to_double(), std::exp(-9.0 / 10.0), 1e-13);
}

TEST(Exp, MonotoneDecreasing) {
  BigFix prev = exp_neg(BigFix::from_uint(0));
  for (int v = 1; v <= 20; ++v) {
    const BigFix cur = exp_neg(BigFix::from_uint(static_cast<std::uint64_t>(v)));
    EXPECT_LT(cur.compare(prev), 0) << "v=" << v;
    prev = cur;
  }
}

}  // namespace
}  // namespace cgs::fp
