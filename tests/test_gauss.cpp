// Probability-matrix construction: exactness, truncation accounting, both
// normalizations, DDG feasibility, and the parameter sets of the paper.

#include <gtest/gtest.h>

#include <cmath>

#include "gauss/probmatrix.h"
#include "stats/divergence.h"

namespace cgs::gauss {
namespace {

TEST(Params, PaperParameterSets) {
  EXPECT_DOUBLE_EQ(GaussianParams::sigma_2().sigma(), 2.0);
  EXPECT_NEAR(GaussianParams::sigma_6_15543().sigma(), 6.15543, 1e-12);
  EXPECT_DOUBLE_EQ(GaussianParams::sigma_215().sigma(), 215.0);
  EXPECT_DOUBLE_EQ(GaussianParams::sigma_sqrt5().sigma_sq(), 5.0);
  EXPECT_EQ(GaussianParams::sigma_2().max_value(), 26u);   // tau=13
  EXPECT_EQ(GaussianParams::sigma_2().support_size(), 27u);
  EXPECT_EQ(GaussianParams::sigma_215().max_value(), 2795u);
}

TEST(Params, DescribeMentionsEverything) {
  const std::string d = GaussianParams::sigma_2().describe();
  EXPECT_NE(d.find("sigma=2"), std::string::npos);
  EXPECT_NE(d.find("tau=13"), std::string::npos);
  EXPECT_NE(d.find("n=128"), std::string::npos);
}

class MatrixBothNorms : public ::testing::TestWithParam<Normalization> {};

TEST_P(MatrixBothNorms, MassAtMostOneAndDeficitTiny) {
  auto p = GaussianParams::sigma_2(64);
  p.normalization = GetParam();
  const ProbMatrix m(p);
  EXPECT_EQ(m.rows(), 27u);
  // Total mass <= 1 and the DDG stays incomplete (deficit > 0).
  EXPECT_GT(m.deficit_double(), 0.0);
  // Deficit is tiny: bounded by support * 2^-n plus the normalizer slack.
  EXPECT_LT(m.deficit_double(), 1e-8);
}

TEST_P(MatrixBothNorms, BitsMatchStoredProbabilities) {
  auto p = GaussianParams::sigma_1(32);
  p.normalization = GetParam();
  const ProbMatrix m(p);
  for (std::size_t v = 0; v < m.rows(); ++v) {
    double from_bits = 0.0;
    for (int i = 0; i < 32; ++i)
      if (m.bit(v, i)) from_bits += std::pow(0.5, i + 1);
    EXPECT_NEAR(from_bits, m.probability(v).to_double(), 1e-15);
  }
}

TEST_P(MatrixBothNorms, ColumnWeightsConsistent) {
  auto p = GaussianParams::sigma_2(48);
  p.normalization = GetParam();
  const ProbMatrix m(p);
  for (int i = 0; i < 48; ++i) {
    int h = 0;
    for (std::size_t v = 0; v < m.rows(); ++v) h += m.bit(v, i);
    EXPECT_EQ(h, m.column_weight(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Norms, MatrixBothNorms,
                         ::testing::Values(Normalization::kDiscrete,
                                           Normalization::kContinuous));

TEST(Matrix, DiscreteNormalizerNeverClips) {
  for (int prec : {16, 32, 64, 128}) {
    const ProbMatrix m(GaussianParams::sigma_2(prec));
    EXPECT_EQ(m.clipped_bits(), 0u) << "precision " << prec;
  }
}

TEST(Matrix, ContinuousNormalizerClipsOnlySmallSigma) {
  auto p1 = GaussianParams::sigma_1(128);
  p1.normalization = Normalization::kContinuous;
  EXPECT_GT(ProbMatrix(p1).clipped_bits(), 0u);

  auto p6 = GaussianParams::sigma_6_15543(128);
  p6.normalization = Normalization::kContinuous;
  EXPECT_EQ(ProbMatrix(p6).clipped_bits(), 0u);
}

TEST(Matrix, ProbabilitiesMatchClosedForm) {
  // Discrete normalization at high precision should match a directly
  // computed folded pmf to double accuracy.
  const ProbMatrix m(GaussianParams::sigma_2(128));
  const double s2 = 2.0;
  double z = 1.0;
  for (int v = 1; v < 200; ++v)
    z += 2.0 * std::exp(-v * v / (2.0 * s2 * s2));
  for (std::size_t v = 0; v < m.rows(); ++v) {
    const double expect =
        (v == 0 ? 1.0 : 2.0) * std::exp(-static_cast<double>(v * v) / (2.0 * s2 * s2)) / z;
    EXPECT_NEAR(m.probability(v).to_double(), expect, 1e-12) << "v=" << v;
  }
}

TEST(Matrix, RowZeroLargestThenDecreasing) {
  const ProbMatrix m(GaussianParams::sigma_6_15543(96));
  // Folded pmf: p(1) = 2 D(1) > D(0) can hold for large sigma; from v>=1 the
  // rows must strictly decrease.
  for (std::size_t v = 2; v < m.rows(); ++v)
    EXPECT_TRUE(m.probability(v) <= m.probability(v - 1)) << "v=" << v;
}

TEST(Matrix, StatisticalDistanceShrinksWithPrecision) {
  const double sd16 = ProbMatrix(GaussianParams::sigma_2(16))
                          .truncation_statistical_distance();
  const double sd32 = ProbMatrix(GaussianParams::sigma_2(32))
                          .truncation_statistical_distance();
  const double sd64 = ProbMatrix(GaussianParams::sigma_2(64))
                          .truncation_statistical_distance();
  EXPECT_GT(sd16, sd32);
  EXPECT_GT(sd32, sd64);
  EXPECT_LT(sd64, 1e-15);
}

TEST(Divergence, MeasuresAgreeOnQuality) {
  const ProbMatrix m(GaussianParams::sigma_2(128));
  EXPECT_LT(stats::statistical_distance(m), 1e-30);
  const double renyi = stats::renyi_divergence(m, 2.0);
  EXPECT_GE(renyi, 1.0 - 1e-9);
  EXPECT_LT(renyi, 1.0 + 1e-9);
  // max-log is dominated by the deepest tail row (p ~ 2^-122 truncated to
  // 128 bits keeps only ~6 significant bits): ~0.01, not ~2^-128.
  EXPECT_LT(stats::max_log_distance(m), 0.05);
  EXPECT_GT(stats::max_log_distance(m), 0.0);
}

TEST(Divergence, RequiredPrecisionScalesWithLambda) {
  const auto p = GaussianParams::sigma_2();
  const int n128 = stats::required_precision_bits(p, 128);
  const int n64 = stats::required_precision_bits(p, 64);
  EXPECT_GT(n128, n64);
  EXPECT_GE(n128, 128);
  EXPECT_LE(n128, 160);
}

TEST(Matrix, ToStringRendersFig1Style) {
  const ProbMatrix m(GaussianParams::sigma_2(8));
  const std::string s = m.to_string();
  EXPECT_NE(s.find("P0"), std::string::npos);
  EXPECT_NE(s.find("h "), std::string::npos);
}

}  // namespace
}  // namespace cgs::gauss
