// Wire-format round trips for public keys, secret keys and signatures,
// including cross-codec integration: decode a key, verify a signature.

#include <gtest/gtest.h>

#include "cdt/cdt_samplers.h"
#include "falcon/keycodec.h"
#include "falcon/verify.h"
#include "prng/chacha20.h"

namespace cgs::falcon {
namespace {

const KeyPair& key() {
  static const KeyPair kp = [] {
    prng::ChaCha20Source rng(606);
    return keygen(FalconParams::for_degree(64), rng);
  }();
  return kp;
}

TEST(KeyCodec, PublicKeyRoundTrip) {
  const auto bytes = encode_public_key(key());
  // 1 header byte + ceil(64 * 14 / 8) payload bytes.
  EXPECT_EQ(bytes.size(), 1u + (64 * 14 + 7) / 8);
  const auto back = decode_public_key(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->h, key().h);
  EXPECT_EQ(back->params.n, 64u);
}

TEST(KeyCodec, PublicKeyRejectsGarbage) {
  EXPECT_FALSE(decode_public_key({}).has_value());
  EXPECT_FALSE(decode_public_key({0xff, 1, 2}).has_value());
  auto bytes = encode_public_key(key());
  bytes[0] = 0x30;  // signature tag, not a public key
  EXPECT_FALSE(decode_public_key(bytes).has_value());
  bytes = encode_public_key(key());
  bytes.pop_back();  // truncated
  EXPECT_FALSE(decode_public_key(bytes).has_value());
}

TEST(KeyCodec, SecretKeyRoundTrip) {
  const auto bytes = encode_secret_key(key());
  const auto back = decode_secret_key(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->f, key().f);
  EXPECT_EQ(back->g, key().g);
  EXPECT_EQ(back->f_cap, key().f_cap);
  EXPECT_EQ(back->g_cap, key().g_cap);
}

TEST(KeyCodec, SecretKeyRejectsWrongTag) {
  auto bytes = encode_secret_key(key());
  bytes[0] = 0x06;
  EXPECT_FALSE(decode_secret_key(bytes).has_value());
}

TEST(KeyCodec, SignatureRoundTripAndVerify) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  const cdt::CdtTable t(m);
  cdt::CdtByteScanSampler base(t);
  Signer signer(key(), base);
  prng::ChaCha20Source rng(7);
  const Signature sig = signer.sign("wire format", rng);

  const auto bytes = encode_signature(sig, 64);
  const auto back = decode_signature(bytes, 64);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->nonce, sig.nonce);
  EXPECT_EQ(back->s1, sig.s1);

  // End-to-end: decode the public key and verify the decoded signature.
  const auto pk = decode_public_key(encode_public_key(key()));
  ASSERT_TRUE(pk.has_value());
  Verifier verifier(pk->h, pk->params);
  EXPECT_TRUE(verifier.verify("wire format", *back));
}

TEST(KeyCodec, SignatureSizeIsCompact) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  const cdt::CdtTable t(m);
  cdt::CdtBinarySearchSampler base(t);
  Signer signer(key(), base);
  prng::ChaCha20Source rng(8);
  const auto bytes = encode_signature(signer.sign("size", rng), 64);
  // 64 coefficients with sigma ~ 166: roughly 1.4 bytes/coeff + overheads.
  EXPECT_LT(bytes.size(), 41u + 64u * 2u);
}

TEST(KeyCodec, SignatureWrongDegreeRejected) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  const cdt::CdtTable t(m);
  cdt::CdtByteScanSampler base(t);
  Signer signer(key(), base);
  prng::ChaCha20Source rng(9);
  const auto bytes = encode_signature(signer.sign("deg", rng), 64);
  EXPECT_FALSE(decode_signature(bytes, 128).has_value());
}

}  // namespace
}  // namespace cgs::falcon
