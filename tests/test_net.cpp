// The multi-reactor server core: framed echo round trips over real
// sockets, pipelining under concurrent clients, ResponseToken reply-debt
// settlement from foreign threads, the drain accounting behind graceful
// shutdown, and the whole connection-hygiene surface — idle eviction,
// slowloris read-progress deadlines, connection/owed/write caps — each
// answering with a typed kOverloaded frame, never a silent close. The
// server tests run across 1, 2 and 4 reactors (SO_REUSEPORT and hand-off
// accept modes both covered) under the TSan CI job: reactor threads,
// client threads and deferred token settlers all touch the server.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "engine/registry.h"
#include "falcon/keygen.h"
#include "net/client.h"
#include "net/framing.h"
#include "net/overload.h"
#include "net/server.h"
#include "net/timer_wheel.h"
#include "obs/registry.h"
#include "prng/chacha20.h"
#include "serial/serial.h"
#include "serve/dispatcher.h"
#include "serve/router.h"
#include "serve/wire.h"

namespace cgs::net {
namespace {

std::vector<std::uint8_t> payload_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string to_string(const std::vector<std::uint8_t>& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

void wait_for_no_connections(const Server& server) {
  for (int i = 0; i < 400 && server.active_connections() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

TEST(Framing, LengthPrefixRoundTrip) {
  const auto msg = length_prefixed(payload_of("hello"));
  ASSERT_EQ(msg.size(), 9u);
  EXPECT_EQ(msg[0], 5u);  // little-endian length
  EXPECT_EQ(msg[1], 0u);
  EXPECT_EQ(to_string({msg.begin() + 4, msg.end()}), "hello");
}

TEST(Overload, CodecRoundTripAndPeek) {
  OverloadedFrame shed;
  shed.retry_after_ms = 750;
  shed.reason = "connection cap";
  const auto encoded = encode_overloaded(shed);
  // On the wire it is length-prefixed like everything else; the decode
  // side sees the frame without the prefix (the stream layer ate it).
  const std::vector<std::uint8_t> frame(encoded.begin() + 4, encoded.end());
  EXPECT_TRUE(is_overloaded(frame));
  const OverloadedFrame back = decode_overloaded(frame);
  EXPECT_EQ(back.retry_after_ms, 750u);
  EXPECT_EQ(back.reason, "connection cap");
  EXPECT_EQ(back.request_id, 0u);  // id-less transport shed
  // A non-overload frame and garbage both peek false, never throw.
  EXPECT_FALSE(is_overloaded(payload_of("not a frame")));
  EXPECT_FALSE(is_overloaded({}));
}

TEST(Overload, OptionalRequestIdRoundTripsAndStaysByteCompatible) {
  // id = 0 encodes byte-identically to the pre-id frame (old peers
  // interoperate unchanged)...
  OverloadedFrame idless;
  idless.retry_after_ms = 10;
  idless.reason = "queue-full";
  OverloadedFrame zero = idless;
  zero.request_id = 0;
  EXPECT_EQ(encode_overloaded(idless), encode_overloaded(zero));
  // ...and a set id rides as a trailing field an old decoder would have
  // simply never read.
  OverloadedFrame named = idless;
  named.request_id = 0xfeedfacecafe0123ull;
  const auto encoded = encode_overloaded(named);
  EXPECT_EQ(encoded.size(), encode_overloaded(idless).size() + 8);
  const OverloadedFrame back =
      decode_overloaded(std::span(encoded).subspan(4));
  EXPECT_EQ(back.retry_after_ms, 10u);
  EXPECT_EQ(back.reason, "queue-full");
  EXPECT_EQ(back.request_id, 0xfeedfacecafe0123ull);
}

TEST(TimerWheelTest, FiresAtDeadlineAndNotBefore) {
  TimerWheel wheel(1000, 16);  // 1ms tick, 16 slots
  std::vector<std::uint64_t> fired;
  wheel.schedule(7, 5000);
  wheel.advance(4000, [&](std::uint64_t k) { fired.push_back(k); });
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.size(), 1u);
  wheel.advance(5000, [&](std::uint64_t k) { fired.push_back(k); });
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 7u);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheelTest, EntriesBeyondOneRevolutionWait) {
  TimerWheel wheel(1000, 8);  // revolution = 8ms
  std::vector<std::uint64_t> fired;
  wheel.schedule(1, 3000);
  wheel.schedule(2, 3000 + 8000);  // same slot, one revolution later
  wheel.advance(4000, [&](std::uint64_t k) { fired.push_back(k); });
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
  wheel.advance(12000, [&](std::uint64_t k) { fired.push_back(k); });
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], 2u);
}

TEST(TimerWheelTest, CallbackMayRescheduleDuringAdvance) {
  // The lazy-cancellation protocol: the callback re-files a new deadline
  // for the same key while the wheel is mid-sweep.
  TimerWheel wheel(1000, 16);
  wheel.schedule(3, 1000);
  int fires = 0;
  wheel.advance(2000, [&](std::uint64_t) {
    ++fires;
    wheel.schedule(3, 9000);  // future deadline: must not fire this sweep
  });
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(wheel.size(), 1u);
  wheel.advance(9000, [&](std::uint64_t) { ++fires; });
  EXPECT_EQ(fires, 2);
}

TEST(ServerOptionsTest, ValidateRejectsNonsense) {
  ServerOptions bad;
  bad.limits.max_frame = 2;
  EXPECT_THROW(bad.validate(), Error);
  bad = {};
  bad.limits.max_connections = 0;
  EXPECT_THROW(bad.validate(), Error);
  bad = {};
  bad.timeouts.idle = std::chrono::milliseconds(0);
  EXPECT_THROW(bad.validate(), Error);
  EXPECT_NO_THROW(ServerOptions{}.validate());
}

// ------------------------------------------------------------------------
// Server tests parameterized over the reactor count. Every case runs with
// 1 (the old single-loop shape), 2 and 4 event loops.

class MultiReactor : public ::testing::TestWithParam<int> {
 protected:
  ServerOptions options() const {
    ServerOptions o;
    o.reactors = GetParam();
    return o;
  }
};

TEST_P(MultiReactor, EchoRoundTripAndCounters) {
  Server server(
      [](ResponseToken token, std::vector<std::uint8_t> frame) {
        token.send(length_prefixed(std::move(frame)));
      },
      options());
  ASSERT_GT(server.port(), 0);
  EXPECT_EQ(server.reactors(), GetParam());

  Client client(server.port());
  for (int i = 0; i < 5; ++i)
    client.send(length_prefixed(payload_of("ping " + std::to_string(i))));
  for (int i = 0; i < 5; ++i) {
    const auto frame = client.read();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(to_string(*frame), "ping " + std::to_string(i));
  }
  client.half_close();
  EXPECT_FALSE(client.read().has_value());  // server closed after drain

  EXPECT_EQ(server.shutdown(), 0u);
  EXPECT_EQ(server.frames_received(), 5u);
  EXPECT_EQ(server.frames_sent(), 5u);
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_EQ(server.stats().sheds_total(), 0u);
}

TEST_P(MultiReactor, ManyConcurrentPipeliningClients) {
  Server server(
      [](ResponseToken token, std::vector<std::uint8_t> frame) {
        token.send(length_prefixed(std::move(frame)));
      },
      options());

  constexpr int kClients = 8, kFrames = 50;
  std::atomic<int> echoed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(server.port());
      for (int i = 0; i < kFrames; ++i)
        client.send(length_prefixed(
            payload_of(std::to_string(c) + ":" + std::to_string(i))));
      client.half_close();
      int got = 0;
      while (auto frame = client.read()) {
        EXPECT_EQ(to_string(*frame),
                  std::to_string(c) + ":" + std::to_string(got));
        ++got;
      }
      echoed += got;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(echoed.load(), kClients * kFrames);
  EXPECT_EQ(server.shutdown(), 0u);
  EXPECT_EQ(server.frames_received(),
            static_cast<std::uint64_t>(kClients * kFrames));
}

TEST_P(MultiReactor, ConnIdsCarryTheReactorIndex) {
  std::mutex mu;
  std::set<std::uint64_t> reactor_bits;
  Server server(
      [&](ResponseToken token, std::vector<std::uint8_t> frame) {
        {
          std::lock_guard<std::mutex> lock(mu);
          reactor_bits.insert(token.conn_id() >> 48);
        }
        token.send(length_prefixed(std::move(frame)));
      },
      options());

  std::vector<std::thread> clients;
  for (int c = 0; c < 12; ++c)
    clients.emplace_back([&] {
      Client client(server.port());
      client.send(length_prefixed(payload_of("id?")));
      EXPECT_TRUE(client.read().has_value());
    });
  for (auto& t : clients) t.join();
  server.shutdown();
  std::lock_guard<std::mutex> lock(mu);
  for (std::uint64_t bits : reactor_bits) {
    EXPECT_GE(bits, 1u);  // never collides with listener/wake ids
    EXPECT_LE(bits, static_cast<std::uint64_t>(GetParam()));
  }
}

TEST_P(MultiReactor, ShutdownDrainsDeferredTokens) {
  // The handler hands its token to another thread that answers after a
  // delay — exactly the dispatcher-future shape. shutdown() must wait
  // for every owed response and flush it before closing (force-closed
  // count 0).
  std::vector<std::thread> responders;
  std::mutex responders_mu;
  Server server(
      [&](ResponseToken token, std::vector<std::uint8_t> frame) {
        std::lock_guard<std::mutex> lock(responders_mu);
        responders.emplace_back(
            [token = std::move(token), frame = std::move(frame)]() mutable {
              std::this_thread::sleep_for(std::chrono::milliseconds(150));
              token.send(length_prefixed(std::move(frame)));
            });
      },
      options());

  constexpr int kFrames = 10;
  Client client(server.port());
  for (int i = 0; i < kFrames; ++i)
    client.send(length_prefixed(payload_of("deferred")));
  client.half_close();

  // Give the loop a moment to deliver the frames to the handler, then
  // start the drain while every response is still pending (the
  // responders' sleep dwarfs this) — shutdown must block on them.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread reader([&] {
    int got = 0;
    while (client.read()) ++got;
    EXPECT_EQ(got, kFrames);
  });
  EXPECT_EQ(server.shutdown(), 0u);  // waited for all deferred sends
  reader.join();
  {
    std::lock_guard<std::mutex> lock(responders_mu);
    for (auto& t : responders) t.join();
  }
  EXPECT_EQ(server.frames_sent(), static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(server.stats().sheds_dropped_token, 0u);
}

TEST_P(MultiReactor, IdleConnectionEvictedWithTypedFrame) {
  ServerOptions o = options();
  o.timeouts.idle = std::chrono::milliseconds(100);
  o.timeouts.shed_linger = std::chrono::milliseconds(300);
  Server server(
      [](ResponseToken token, std::vector<std::uint8_t> frame) {
        token.send(length_prefixed(std::move(frame)));
      },
      o);

  ClientOptions copts;
  copts.read_timeout = std::chrono::milliseconds(5000);
  Client client(server.port(), copts);
  // Prove the connection works, then go silent.
  client.send(length_prefixed(payload_of("hi")));
  ASSERT_TRUE(client.read().has_value());

  // The eviction must arrive as a typed frame, not an RST.
  const auto frame = client.read();
  ASSERT_TRUE(frame.has_value());
  ASSERT_TRUE(is_overloaded(*frame));
  EXPECT_EQ(decode_overloaded(*frame).reason, "idle timeout");
  // ... and the connection closes once the linger deadline passes.
  EXPECT_FALSE(client.read().has_value());

  wait_for_no_connections(server);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.idle_evictions, 1u);
  EXPECT_EQ(stats.open_connections, 0u);
  server.shutdown();
}

TEST_P(MultiReactor, SlowlorisTripsReadProgressDeadline) {
  ServerOptions o = options();
  o.timeouts.idle = std::chrono::milliseconds(10000);  // idle must not fire
  o.timeouts.read_progress = std::chrono::milliseconds(120);
  o.timeouts.shed_linger = std::chrono::milliseconds(300);
  std::atomic<int> delivered{0};
  Server server(
      [&](ResponseToken token, std::vector<std::uint8_t> frame) {
        ++delivered;
        token.send(length_prefixed(std::move(frame)));
      },
      o);

  ClientOptions copts;
  copts.read_timeout = std::chrono::milliseconds(5000);
  Client client(server.port(), copts);
  // A length prefix promising 100 bytes, then a trickle that stalls.
  const std::vector<std::uint8_t> partial = {100, 0, 0, 0, 1, 2, 3};
  client.send(partial);

  const auto frame = client.read();
  ASSERT_TRUE(frame.has_value());
  ASSERT_TRUE(is_overloaded(*frame));
  EXPECT_EQ(decode_overloaded(*frame).reason, "read-progress timeout");
  EXPECT_FALSE(client.read().has_value());
  EXPECT_EQ(delivered.load(), 0);

  wait_for_no_connections(server);
  EXPECT_EQ(server.stats().read_timeout_evictions, 1u);
  server.shutdown();
}

TEST_P(MultiReactor, ConnectionCapShedsTypedNeverSilent) {
  ServerOptions o = options();
  o.limits.max_connections = 2;
  o.timeouts.shed_linger = std::chrono::milliseconds(500);
  Server server(
      [](ResponseToken token, std::vector<std::uint8_t> frame) {
        token.send(length_prefixed(std::move(frame)));
      },
      o);

  // Two established connections (echo proves they are fully adopted).
  Client a(server.port()), b(server.port());
  a.send(length_prefixed(payload_of("a")));
  ASSERT_TRUE(a.read().has_value());
  b.send(length_prefixed(payload_of("b")));
  ASSERT_TRUE(b.read().has_value());

  // Every connection over the cap must observe the typed shed frame —
  // zero silent closes.
  for (int i = 0; i < 3; ++i) {
    ClientOptions copts;
    copts.read_timeout = std::chrono::milliseconds(5000);
    Client over(server.port(), copts);
    const auto frame = over.read();
    ASSERT_TRUE(frame.has_value()) << "over-cap conn " << i << " got no frame";
    ASSERT_TRUE(is_overloaded(*frame));
    const OverloadedFrame shed = decode_overloaded(*frame);
    EXPECT_EQ(shed.reason, "connection cap");
    EXPECT_GT(shed.retry_after_ms, 0u);
    EXPECT_FALSE(over.read().has_value());  // closed, after the frame
  }
  EXPECT_EQ(server.stats().sheds_accept_cap, 3u);

  // The established connections were never disturbed.
  a.send(length_prefixed(payload_of("still here")));
  EXPECT_TRUE(a.read().has_value());
  server.shutdown();
}

TEST_P(MultiReactor, OwedResponsesCapShedsPerFrame) {
  ServerOptions o = options();
  o.limits.max_owed_responses = 4;
  std::mutex tokens_mu;
  std::vector<ResponseToken> parked;
  Server server(
      [&](ResponseToken token, std::vector<std::uint8_t> frame) {
        std::lock_guard<std::mutex> lock(tokens_mu);
        parked.push_back(std::move(token));
      },
      o);

  Client client(server.port());
  // Pipeline 8 requests in one burst: whatever the arrival chunking,
  // exactly 4 can be owed at once — the rest shed per frame.
  std::vector<std::uint8_t> burst;
  for (int i = 0; i < 8; ++i) {
    const auto one = length_prefixed(payload_of("req " + std::to_string(i)));
    burst.insert(burst.end(), one.begin(), one.end());
  }
  client.send(burst);

  // The four sheds answer immediately.
  for (int i = 0; i < 4; ++i) {
    const auto frame = client.read();
    ASSERT_TRUE(frame.has_value());
    ASSERT_TRUE(is_overloaded(*frame));
    EXPECT_EQ(decode_overloaded(*frame).reason, "owed-responses cap");
  }
  // The sheds flush during admission, before the handler delivery loop
  // runs — wait for all four tokens to actually land in the handler.
  for (int i = 0; i < 400; ++i) {
    {
      std::lock_guard<std::mutex> lock(tokens_mu);
      if (parked.size() == 4) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Settle the parked debt; the echoes follow.
  {
    std::lock_guard<std::mutex> lock(tokens_mu);
    ASSERT_EQ(parked.size(), 4u);
    for (auto& token : parked)
      token.send(length_prefixed(payload_of("late answer")));
    parked.clear();
  }
  for (int i = 0; i < 4; ++i) {
    const auto frame = client.read();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(to_string(*frame), "late answer");
  }
  EXPECT_EQ(server.stats().sheds_owed_cap, 4u);
  server.shutdown();
}

TEST_P(MultiReactor, QueuedWriteBytesCapShedsPerFrame) {
  ServerOptions o = options();
  o.limits.max_queued_write_bytes = 32 * 1024;
  o.limits.sndbuf_bytes = 4096;  // keep kernel buffering out of the way
  Server server(
      [](ResponseToken token, std::vector<std::uint8_t> frame) {
        token.send(length_prefixed(std::move(frame)));
      },
      o);

  // A raw socket with a tiny receive buffer (set before connect so the
  // window stays small): the server's 16KiB echoes have nowhere to go
  // while we stay quiet, so its per-connection out-queue fills.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  constexpr int kFrames = 24;
  const std::vector<std::uint8_t> big(16 * 1024, 0xAB);
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(write_frame(fd, length_prefixed(big)));
    // Space the frames out so each one sees the queue the previous
    // echoes built up.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::shutdown(fd, SHUT_WR);

  int echoes = 0, sheds = 0;
  while (auto frame = read_frame(fd)) {
    if (is_overloaded(*frame)) {
      EXPECT_EQ(decode_overloaded(*frame).reason, "queued-write-bytes cap");
      ++sheds;
    } else {
      EXPECT_EQ(frame->size(), big.size());
      ++echoes;
    }
  }
  ::close(fd);
  // One answer per frame — a shed response still settles the debt.
  EXPECT_EQ(echoes + sheds, kFrames);
  EXPECT_GE(sheds, 1);
  EXPECT_EQ(server.stats().sheds_write_cap,
            static_cast<std::uint64_t>(sheds));
  EXPECT_EQ(server.shutdown(), 0u);
}

TEST_P(MultiReactor, DroppedTokenAutoSheds) {
  Server server(
      [](ResponseToken token, std::vector<std::uint8_t> frame) {
        // Dropped on the floor: the destructor must settle the debt.
      },
      options());

  Client client(server.port());
  client.send(length_prefixed(payload_of("anyone home?")));
  const auto frame = client.read();
  ASSERT_TRUE(frame.has_value());
  ASSERT_TRUE(is_overloaded(*frame));
  EXPECT_EQ(decode_overloaded(*frame).reason, "response dropped");
  EXPECT_EQ(server.stats().sheds_dropped_token, 1u);
  server.shutdown();
}

TEST_P(MultiReactor, ExplicitShedReachesRequestAsOverloaded) {
  Server server(
      [](ResponseToken token, std::vector<std::uint8_t> frame) {
        token.shed("try later");
      },
      options());

  Client client(server.port());
  try {
    client.request(length_prefixed(payload_of("work?")));
    FAIL() << "request() must surface the shed";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.kind(), ClientError::Kind::kOverloaded);
    EXPECT_GT(e.retry_after_ms(), 0u);
  }
  server.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Reactors, MultiReactor, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::to_string(info.param) + "reactors";
                         });

// ------------------------------------------------------------------------

TEST(MultiReactorServer, HandoffAcceptModeServes) {
  ServerOptions o;
  o.reactors = 4;
  o.accept_mode = ServerOptions::AcceptMode::kHandoff;
  Server server(
      [](ResponseToken token, std::vector<std::uint8_t> frame) {
        token.send(length_prefixed(std::move(frame)));
      },
      o);
  EXPECT_FALSE(server.reuse_port());

  std::mutex mu;
  std::set<std::uint64_t> reactors_seen;
  std::vector<std::thread> clients;
  for (int c = 0; c < 16; ++c)
    clients.emplace_back([&, c] {
      Client client(server.port());
      for (int i = 0; i < 10; ++i) {
        const auto echo = client.request(
            length_prefixed(payload_of(std::to_string(c * 100 + i))));
        EXPECT_EQ(to_string(echo), std::to_string(c * 100 + i));
      }
    });
  for (auto& t : clients) t.join();
  EXPECT_EQ(server.shutdown(), 0u);
  EXPECT_EQ(server.frames_received(), 160u);
}

TEST(MultiReactorServer, MetricsExposeThroughSharedRegistry) {
  obs::Registry registry;
  ServerOptions o;
  o.reactors = 2;
  o.registry = &registry;
  Server server(
      [](ResponseToken token, std::vector<std::uint8_t> frame) {
        token.send(length_prefixed(std::move(frame)));
      },
      o);
  Client client(server.port());
  client.send(length_prefixed(payload_of("count me")));
  ASSERT_TRUE(client.read().has_value());

  std::set<std::string> names;
  for (const auto& sample : registry.collect()) names.insert(sample.name);
  EXPECT_TRUE(names.count("cgs_net_connections_open"));
  EXPECT_TRUE(names.count("cgs_net_connections_accepted_total"));
  EXPECT_TRUE(names.count("cgs_net_frames_decoded_total"));
  EXPECT_TRUE(names.count("cgs_net_overload_sheds_total"));
  EXPECT_TRUE(names.count("cgs_net_reactors"));

  server.shutdown();
  // Callback instruments are gone after shutdown (their state died with
  // the reactors); owned instruments stay, frozen.
  names.clear();
  for (const auto& sample : registry.collect()) names.insert(sample.name);
  EXPECT_FALSE(names.count("cgs_net_connections_open"));
  EXPECT_TRUE(names.count("cgs_net_write_stall_us"));
  // stats() survives shutdown.
  EXPECT_EQ(server.stats().frames_received, 1u);
}

TEST(MultiReactorServer, OversizedLengthPrefixClosesConnectionHard) {
  std::atomic<int> frames_seen{0};
  ServerOptions o;
  o.reactors = 2;
  o.limits.max_frame = 1024;
  Server server(
      [&](ResponseToken token, std::vector<std::uint8_t> frame) {
        ++frames_seen;
        token.send(length_prefixed(std::move(frame)));
      },
      o);

  Client client(server.port());
  // A length prefix lying far beyond the cap: unrecoverable framing —
  // this is the one case that still closes without an answer.
  client.send(std::vector<std::uint8_t>{0xff, 0xff, 0xff, 0x7f, 1, 2, 3});
  try {
    EXPECT_FALSE(client.read().has_value());
  } catch (const ClientError& e) {
    EXPECT_EQ(e.kind(), ClientError::Kind::kPeerClosed);
  }
  wait_for_no_connections(server);
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_EQ(frames_seen.load(), 0);
  EXPECT_EQ(server.stats().frames_corrupt, 1u);
  server.shutdown();
}

TEST(MultiReactorServer, SettlingTokenForGoneConnectionReturnsFalse) {
  std::mutex mu;
  std::vector<ResponseToken> parked;
  ServerOptions o;
  o.reactors = 2;
  Server server(
      [&](ResponseToken token, std::vector<std::uint8_t> frame) {
        std::lock_guard<std::mutex> lock(mu);
        parked.push_back(std::move(token));
      },
      o);

  // A raw socket so we can RST on close (SO_LINGER, timeout 0): a clean
  // FIN would leave the connection waiting for its owed response, but a
  // reset tears it down immediately — the parked token then points at a
  // connection that no longer exists.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_TRUE(write_frame(fd, length_prefixed(payload_of("x"))));
  // Wait until the handler owns the token, then vanish with an RST.
  for (int i = 0; i < 400; ++i) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!parked.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const linger hard = {1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
  ::close(fd);

  wait_for_no_connections(server);
  EXPECT_EQ(server.active_connections(), 0u);
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(parked.size(), 1u);
  EXPECT_FALSE(parked[0].send(length_prefixed(payload_of("too late"))));
  EXPECT_FALSE(parked[0].valid());  // settled either way
  server.shutdown();
}

TEST(MultiReactorServer, AbruptClientDisconnectIsHarmless) {
  ServerOptions o;
  o.reactors = 2;
  Server server(
      [](ResponseToken token, std::vector<std::uint8_t> frame) {
        token.send(length_prefixed(std::move(frame)));
      },
      o);
  for (int round = 0; round < 10; ++round) {
    Client client(server.port());
    client.send(length_prefixed(payload_of("going away")));
    // Destructor closes the socket outright; the server may or may not
    // manage to write the echo back — either way it must stay healthy.
  }
  wait_for_no_connections(server);
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_EQ(server.shutdown(), 0u);
}

TEST(ClientErrors, ConnectRefusedIsTyped) {
  ClientOptions copts;
  copts.connect_timeout = std::chrono::milliseconds(500);
  try {
    Client client(1, copts);  // port 1: nothing listens there
    FAIL() << "connect must fail";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.kind(), ClientError::Kind::kConnect);
  }
}

// -------------------------------------------------------- router wire ----
// The router's overload wire semantics, end to end over real sockets:
// every shed — admission reject, lapsed deadline, unsupported tag — is
// the same typed kOverloaded frame the transport sheds with, and it
// names the request it answers so pipelining clients can settle by id.

engine::SamplerRegistry& sampler_registry() {
  // In-process memo only: these tests must not depend on (or pollute) the
  // user's on-disk cache state.
  static engine::SamplerRegistry reg({.cache_dir = "", .use_disk = false});
  return reg;
}

const falcon::KeyPair& wire_key() {
  static const falcon::KeyPair kp = [] {
    prng::ChaCha20Source rng(31337);
    return falcon::keygen(falcon::FalconParams::for_degree(64), rng);
  }();
  return kp;
}

serve::DispatcherOptions router_options() {
  serve::DispatcherOptions opts;
  opts.signing.backend = engine::Backend::kBitsliced;
  opts.signing.num_threads = 2;
  opts.signing.precision = 64;
  opts.signing.root_seed = 7;
  opts.gaussian.backend = engine::Backend::kBitsliced;
  opts.gaussian.num_threads = 1;
  opts.gaussian.root_seed = 7;
  opts.max_linger_us = 20'000;
  return opts;
}

// A live protocol stack: Dispatcher behind route_frame behind a Server,
// torn down in the one safe order (stop accepting, drain lanes, then
// join the settlers once no future can still land).
struct RouterStack {
  serve::Dispatcher dispatcher;
  serve::CompletionPool pool;
  Server server;

  RouterStack()
      : dispatcher(sampler_registry(), router_options()),
        pool(2),
        server([this](ResponseToken token, std::vector<std::uint8_t> frame) {
          serve::route_frame(dispatcher, pool, std::move(token),
                             std::move(frame));
        }) {}

  ~RouterStack() {
    server.shutdown();
    dispatcher.shutdown();
    pool.join();
  }
};

TEST(RouterWire, AdmissionShedIsTypedAndNamesTheRequest) {
  RouterStack stack;
  const std::uint64_t key_id = stack.dispatcher.add_key(wire_key());
  stack.dispatcher.shutdown();  // every submit now sheds kShutdown

  serve::SignRequestFrame req;
  req.request_id = 0xabcd;
  req.key_id = key_id;
  req.message = "after close";
  Client client(stack.server.port());
  client.send(serve::encode(req));
  const auto frame = client.read();
  ASSERT_TRUE(frame.has_value());
  ASSERT_TRUE(is_overloaded(*frame));
  const OverloadedFrame shed = decode_overloaded(*frame);
  EXPECT_EQ(shed.reason, "shutdown");
  EXPECT_EQ(shed.retry_after_ms, 0u);  // no drain hint: retrying won't help
  EXPECT_EQ(shed.request_id, 0xabcdu);
}

TEST(RouterWire, ExpiredDeadlineShedsTypedOnTheWire) {
  RouterStack stack;
  const std::uint64_t key_id = stack.dispatcher.add_key(wire_key());
  serve::SignRequestFrame req;
  req.request_id = 77;
  req.key_id = key_id;
  req.message = "too late";
  req.deadline_us = 1;  // lapses long before the batch can close
  Client client(stack.server.port());
  client.send(serve::encode(req));
  const auto frame = client.read();
  ASSERT_TRUE(frame.has_value());
  ASSERT_TRUE(is_overloaded(*frame));
  const OverloadedFrame shed = decode_overloaded(*frame);
  EXPECT_EQ(shed.reason, "deadline-expired");
  EXPECT_EQ(shed.request_id, 77u);
}

TEST(RouterWire, UnsupportedTagAnswersTypedOverloadNotVerifyFailure) {
  RouterStack stack;
  // A perfectly well-formed frame that is just not a request: a response
  // tag arriving at the server. The old router answered with a
  // VerifyResponse for id 0 — poison for a client mid sign decode.
  Client client(stack.server.port());
  client.send(
      serve::encode(serve::SignResponseFrame::failure(0x1234, "backwards")));
  const auto frame = client.read();
  ASSERT_TRUE(frame.has_value());
  ASSERT_TRUE(is_overloaded(*frame));
  const OverloadedFrame shed = decode_overloaded(*frame);
  EXPECT_EQ(shed.reason, "unsupported request type");
  EXPECT_EQ(shed.request_id, 0x1234u);  // read out of the frame prefix
}

TEST(RouterWire, UndecodableFrameStillNamesItsRequestId) {
  RouterStack stack;
  const std::uint64_t key_id = stack.dispatcher.add_key(wire_key());
  serve::SignRequestFrame req;
  req.request_id = 0x99;
  req.key_id = key_id;
  req.message = "about to be torn";
  auto msg = serve::encode(req);
  msg.back() ^= 0xff;  // tear the payload tail: the hash check rejects it
  Client client(stack.server.port());
  client.send(msg);
  const auto frame = client.read();
  ASSERT_TRUE(frame.has_value());
  const serve::SignResponseFrame resp = serve::decode_sign_response(*frame);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.request_id, 0x99u);  // recovered from the intact prefix
}

TEST(ClientErrors, ReadDeadlineIsTypedTimeout) {
  std::mutex mu;
  std::vector<ResponseToken> parked;
  Server server([&](ResponseToken token, std::vector<std::uint8_t> frame) {
    std::lock_guard<std::mutex> lock(mu);
    parked.push_back(std::move(token));  // never answers (until shutdown)
  });
  ClientOptions copts;
  copts.read_timeout = std::chrono::milliseconds(100);
  Client client(server.port(), copts);
  client.send(length_prefixed(payload_of("hello?")));
  try {
    client.read();
    FAIL() << "read must time out";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.kind(), ClientError::Kind::kTimeout);
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    for (auto& token : parked) token.shed("test over");
    parked.clear();
  }
  server.shutdown();
}

}  // namespace
}  // namespace cgs::net
