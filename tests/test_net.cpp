// The epoll server core: framed echo round trips over real sockets,
// pipelining under concurrent clients, thread-safe deferred sends, the
// request/response drain accounting behind graceful shutdown, and hard
// close on framing corruption. Runs under the TSan CI job — the loop
// thread, client threads and deferred responders all touch the server.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/framing.h"
#include "net/server.h"
#include "serial/serial.h"

namespace cgs::net {
namespace {

std::vector<std::uint8_t> payload_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string to_string(const std::vector<std::uint8_t>& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

TEST(Framing, LengthPrefixRoundTrip) {
  const auto msg = length_prefixed(payload_of("hello"));
  ASSERT_EQ(msg.size(), 9u);
  EXPECT_EQ(msg[0], 5u);  // little-endian length
  EXPECT_EQ(msg[1], 0u);
  EXPECT_EQ(to_string({msg.begin() + 4, msg.end()}), "hello");
}

TEST(EpollServer, EchoRoundTripAndCounters) {
  EpollServer server([&](std::uint64_t conn, std::vector<std::uint8_t> frame) {
    server.send(conn, length_prefixed(std::move(frame)));
  });
  ASSERT_GT(server.port(), 0);

  Client client(server.port());
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(client.send(length_prefixed(
        payload_of("ping " + std::to_string(i)))));
  for (int i = 0; i < 5; ++i) {
    const auto frame = client.read();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(to_string(*frame), "ping " + std::to_string(i));
  }
  client.half_close();
  EXPECT_FALSE(client.read().has_value());  // server closed after drain

  EXPECT_EQ(server.shutdown(), 0u);
  EXPECT_EQ(server.frames_received(), 5u);
  EXPECT_EQ(server.frames_sent(), 5u);
  EXPECT_EQ(server.active_connections(), 0u);
}

TEST(EpollServer, ManyConcurrentPipeliningClients) {
  EpollServer server([&](std::uint64_t conn, std::vector<std::uint8_t> frame) {
    server.send(conn, length_prefixed(std::move(frame)));
  });

  constexpr int kClients = 8, kFrames = 50;
  std::atomic<int> echoed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(server.port());
      for (int i = 0; i < kFrames; ++i)
        ASSERT_TRUE(client.send(length_prefixed(
            payload_of(std::to_string(c) + ":" + std::to_string(i)))));
      client.half_close();
      int got = 0;
      while (auto frame = client.read()) {
        EXPECT_EQ(to_string(*frame),
                  std::to_string(c) + ":" + std::to_string(got));
        ++got;
      }
      echoed += got;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(echoed.load(), kClients * kFrames);
  EXPECT_EQ(server.shutdown(), 0u);
  EXPECT_EQ(server.frames_received(),
            static_cast<std::uint64_t>(kClients * kFrames));
}

TEST(EpollServer, ShutdownDrainsDeferredResponses) {
  // The handler answers from another thread after a delay — exactly the
  // dispatcher-future shape. shutdown() must wait for every owed response
  // and flush it before closing (force-closed count 0).
  std::vector<std::thread> responders;
  std::mutex responders_mu;
  EpollServer server([&](std::uint64_t conn, std::vector<std::uint8_t> frame) {
    std::lock_guard<std::mutex> lock(responders_mu);
    responders.emplace_back([&server, conn, frame = std::move(frame)] {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      server.send(conn, length_prefixed(frame));
    });
  });

  constexpr int kFrames = 10;
  Client client(server.port());
  for (int i = 0; i < kFrames; ++i)
    ASSERT_TRUE(client.send(length_prefixed(payload_of("deferred"))));
  client.half_close();

  // Give the loop a moment to deliver the frames to the handler, then
  // start the drain while every response is still pending (the
  // responders' sleep dwarfs this) — shutdown must block on them.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread reader([&] {
    int got = 0;
    while (client.read()) ++got;
    EXPECT_EQ(got, kFrames);
  });
  EXPECT_EQ(server.shutdown(), 0u);  // waited for all deferred sends
  reader.join();
  {
    std::lock_guard<std::mutex> lock(responders_mu);
    for (auto& t : responders) t.join();
  }
  EXPECT_EQ(server.frames_sent(), static_cast<std::uint64_t>(kFrames));
}

TEST(EpollServer, OversizedLengthPrefixClosesConnectionHard) {
  std::atomic<int> frames_seen{0};
  EpollServer server(
      [&](std::uint64_t conn, std::vector<std::uint8_t> frame) {
        ++frames_seen;
        server.send(conn, length_prefixed(std::move(frame)));
      },
      {.max_frame = 1024});

  Client client(server.port());
  // A length prefix lying far beyond the cap: unrecoverable framing.
  std::vector<std::uint8_t> evil = {0xff, 0xff, 0xff, 0x7f, 1, 2, 3};
  ASSERT_TRUE(client.send(evil));
  // The server must drop the connection without delivering anything.
  try {
    EXPECT_FALSE(client.read().has_value());
  } catch (const serial::SerialError&) {
    // torn read is equally acceptable — the peer vanished mid-frame
  }
  for (int i = 0; i < 100 && server.active_connections() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_EQ(frames_seen.load(), 0);
  server.shutdown();
}

TEST(EpollServer, SendToGoneConnectionReturnsFalse) {
  std::atomic<std::uint64_t> last_conn{0};
  EpollServer server([&](std::uint64_t conn, std::vector<std::uint8_t> frame) {
    last_conn = conn;
    server.send(conn, length_prefixed(std::move(frame)));
  });
  {
    Client client(server.port());
    ASSERT_TRUE(client.send(length_prefixed(payload_of("x"))));
    ASSERT_TRUE(client.read().has_value());
    client.half_close();
    EXPECT_FALSE(client.read().has_value());
  }  // connection fully closed on both sides
  for (int i = 0; i < 100 && server.active_connections() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(server.send(last_conn.load(), length_prefixed(payload_of("y"))));
  server.shutdown();
}

TEST(EpollServer, AbruptClientDisconnectIsHarmless) {
  EpollServer server([&](std::uint64_t conn, std::vector<std::uint8_t> frame) {
    server.send(conn, length_prefixed(std::move(frame)));
  });
  for (int round = 0; round < 10; ++round) {
    Client client(server.port());
    client.send(length_prefixed(payload_of("going away")));
    // Destructor closes the socket outright; the server may or may not
    // manage to write the echo back — either way it must stay healthy.
  }
  for (int i = 0; i < 200 && server.active_connections() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_EQ(server.shutdown(), 0u);
}

}  // namespace
}  // namespace cgs::net
