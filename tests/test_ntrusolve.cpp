// NTRUSolve: the exact NTRU equation f G - g F = q across ring sizes,
// Babai reduction behaviour, and keygen integration.

#include <gtest/gtest.h>

#include <random>

#include "falcon/keygen.h"
#include "falcon/ntrusolve.h"
#include "prng/chacha20.h"

namespace cgs::falcon {
namespace {

using bigint::BigInt;

ZPoly random_small(std::size_t n, std::mt19937_64& gen, int bound) {
  std::uniform_int_distribution<int> d(-bound, bound);
  ZPoly p(n);
  for (auto& c : p) c = BigInt(d(gen));
  return p;
}

void expect_ntru_equation(const ZPoly& f, const ZPoly& g, const ZPoly& F,
                          const ZPoly& G, std::int64_t q) {
  const ZPoly lhs = zp_sub(zp_mul(f, G), zp_mul(g, F));
  EXPECT_EQ(lhs[0].compare(BigInt(q)), 0);
  for (std::size_t i = 1; i < lhs.size(); ++i)
    EXPECT_TRUE(lhs[i].is_zero()) << i;
}

TEST(ZPoly, MulNegacyclicWrap) {
  // (x^3) * (x) = x^4 = -1 in Z[x]/(x^4+1).
  ZPoly a(4, BigInt(0)), b(4, BigInt(0));
  a[3] = BigInt(1);
  b[1] = BigInt(1);
  const ZPoly c = zp_mul(a, b);
  EXPECT_EQ(c[0].to_int64(), -1);
  for (int i = 1; i < 4; ++i) EXPECT_TRUE(c[static_cast<std::size_t>(i)].is_zero());
}

TEST(ZPoly, FieldNormIsMultiplicative) {
  std::mt19937_64 gen(3);
  const ZPoly f = random_small(8, gen, 20);
  const ZPoly g = random_small(8, gen, 20);
  const ZPoly nf = zp_field_norm(f);
  const ZPoly ng = zp_field_norm(g);
  const ZPoly nfg = zp_field_norm(zp_mul(f, g));
  const ZPoly prod = zp_mul(nf, ng);
  for (std::size_t i = 0; i < nfg.size(); ++i)
    EXPECT_EQ(nfg[i].compare(prod[i]), 0) << i;
}

TEST(ZPoly, LiftConjugateIdentity) {
  // f(x) f(-x) == N(f)(x^2).
  std::mt19937_64 gen(4);
  const ZPoly f = random_small(16, gen, 50);
  const ZPoly lhs = zp_mul(f, zp_conjugate(f));
  const ZPoly rhs = zp_lift(zp_field_norm(f));
  for (std::size_t i = 0; i < lhs.size(); ++i)
    EXPECT_EQ(lhs[i].compare(rhs[i]), 0) << i;
}

class NtruSolveSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NtruSolveSizes, SolvesAndVerifies) {
  std::mt19937_64 gen(GetParam() * 7 + 1);
  int solved = 0;
  for (int attempt = 0; attempt < 12 && solved < 3; ++attempt) {
    const ZPoly f = random_small(GetParam(), gen, 6);
    const ZPoly g = random_small(GetParam(), gen, 6);
    const auto s = ntru_solve(f, g, 12289);
    if (!s) continue;  // gcd != 1; fine
    expect_ntru_equation(f, g, s->f_cap, s->g_cap, 12289);
    ++solved;
  }
  EXPECT_GE(solved, 1) << "no solvable (f,g) found in 12 draws";
}

INSTANTIATE_TEST_SUITE_P(Pow2, NtruSolveSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

TEST(NtruSolve, SolutionsAreShort) {
  // After Babai reduction the returned F,G should be within a small factor
  // of f,g's magnitude — not resultant-sized.
  std::mt19937_64 gen(11);
  for (int attempt = 0; attempt < 10; ++attempt) {
    const ZPoly f = random_small(32, gen, 5);
    const ZPoly g = random_small(32, gen, 5);
    const auto s = ntru_solve(f, g, 12289);
    if (!s) continue;
    EXPECT_LT(zp_max_bits(s->f_cap), 40) << "F not reduced";
    EXPECT_LT(zp_max_bits(s->g_cap), 40) << "G not reduced";
    return;
  }
  GTEST_SKIP() << "no solvable pair drawn";
}

TEST(NtruSolve, ReduceAgainstShrinksInflatedSolution) {
  std::mt19937_64 gen(13);
  const ZPoly f = random_small(16, gen, 5);
  const ZPoly g = random_small(16, gen, 5);
  const auto s = ntru_solve(f, g, 12289);
  if (!s) GTEST_SKIP();
  // Inflate (F,G) by adding a huge multiple of (f,g): reduction must undo it.
  ZPoly F = s->f_cap, G = s->g_cap;
  ZPoly k(16, BigInt(0));
  k[3] = BigInt(987654321).shifted_left(40);
  F = zp_add(F, zp_mul(k, f));
  G = zp_add(G, zp_mul(k, g));
  expect_ntru_equation(f, g, F, G, 12289);  // still a solution
  reduce_against(f, g, F, G);
  expect_ntru_equation(f, g, F, G, 12289);  // reduction preserves it
  EXPECT_LT(zp_max_bits(F), 40);
}

TEST(NtruSolve, GcdObstructionReturnsNullopt) {
  // f = g = 2 (constant): gcd of resultants is 2 -> no solution.
  ZPoly f = {BigInt(2)}, g = {BigInt(2)};
  EXPECT_FALSE(ntru_solve(f, g, 12289).has_value());
}

TEST(Keygen, ProducesValidKeysAndEquation) {
  prng::ChaCha20Source rng(2024);
  const auto params = FalconParams::for_degree(64);
  KeygenStats stats;
  const KeyPair kp = keygen(params, rng, &stats);
  EXPECT_EQ(kp.f.size(), 64u);
  expect_ntru_equation(to_zpoly(kp.f), to_zpoly(kp.g), to_zpoly(kp.f_cap),
                       to_zpoly(kp.g_cap), kQ);
  // h f == g mod q.
  const NttContext ntt(64);
  const auto hf = ntt.multiply(kp.h, to_mod_q_poly(kp.f));
  const auto gq = to_mod_q_poly(kp.g);
  EXPECT_EQ(hf, gq);
}

TEST(Keygen, DeterministicGivenSeed) {
  const auto params = FalconParams::for_degree(16);
  prng::ChaCha20Source r1(5), r2(5);
  const KeyPair a = keygen(params, r1);
  const KeyPair b = keygen(params, r2);
  EXPECT_EQ(a.f, b.f);
  EXPECT_EQ(a.h, b.h);
}

}  // namespace
}  // namespace cgs::falcon
