// The observability layer: registry create-or-get semantics and name/kind
// validation, lock-free instruments under contention (run under TSan in
// CI), the Prometheus/JSON exposition formats, sampled request tracing
// (stage histograms, slow-trace ring), and the kStatsRequest /
// kStatsResponse wire frames.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.h"
#include "obs/export.h"
#include "obs/labels.h"
#include "obs/metric.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "serial/serial.h"
#include "serve/wire.h"

namespace cgs::obs {
namespace {

// ------------------------------------------------------------- registry ---

TEST(Registry, CreateOrGetReturnsSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("cgs_test_total");
  Counter& b = reg.counter("cgs_test_total");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  reg.counter("cgs_test_total");
  EXPECT_THROW(reg.gauge("cgs_test_total"), Error);
  EXPECT_THROW(reg.histogram("cgs_test_total"), Error);
  EXPECT_THROW(reg.gauge_fn("cgs_test_total", [] { return 0.0; }), Error);
}

TEST(Registry, InvalidNameThrows) {
  Registry reg;
  EXPECT_THROW(reg.counter(""), Error);
  EXPECT_THROW(reg.counter("9starts_with_digit"), Error);
  EXPECT_THROW(reg.counter("has space"), Error);
  EXPECT_THROW(reg.counter("has-dash"), Error);
  (void)reg.counter("ok_name:with_colon_0");  // the full legal alphabet
}

TEST(Registry, CallbackInstrumentsAndUnregister) {
  Registry reg;
  double depth = 7;
  reg.gauge_fn("cgs_test_depth", [&depth] { return depth; });
  reg.counter_fn("cgs_test_hits_total", [] { return 41.0; });

  auto find = [&](const std::string& name) -> std::optional<Sample> {
    for (const Sample& s : reg.collect())
      if (s.name == name) return s;
    return std::nullopt;
  };
  const std::optional<Sample> g = find("cgs_test_depth");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->kind, Kind::kGauge);
  EXPECT_EQ(g->value, 7.0);

  depth = 9;  // callbacks re-evaluate at collect time
  EXPECT_EQ(find("cgs_test_depth")->value, 9.0);

  // Re-binding a callback name replaces the callback (restart semantics).
  reg.gauge_fn("cgs_test_depth", [] { return 1.0; });
  EXPECT_EQ(find("cgs_test_depth")->value, 1.0);

  reg.unregister("cgs_test_depth");
  EXPECT_FALSE(find("cgs_test_depth").has_value());
  EXPECT_TRUE(find("cgs_test_hits_total").has_value());
  reg.unregister_prefix("cgs_test_");
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Registry, CollectIsNameSorted) {
  Registry reg;
  reg.counter("cgs_z_total");
  reg.counter("cgs_a_total");
  reg.gauge("cgs_m");
  const std::vector<Sample> samples = reg.collect();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "cgs_a_total");
  EXPECT_EQ(samples[1].name, "cgs_m");
  EXPECT_EQ(samples[2].name, "cgs_z_total");
}

// Run under TSan in CI: concurrent add() on shared instruments must be
// race-free and lose no increments.
TEST(Registry, ConcurrentIncrementsAreLossless) {
  Registry reg;
  Counter& c = reg.counter("cgs_test_total");
  Gauge& churn = reg.gauge("cgs_test_level");
  Gauge& hwm = reg.gauge("cgs_test_high_water");
  Histogram& h = reg.histogram("cgs_test_us");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add(1);
        churn.add(t % 2 == 0 ? 1 : -1);  // half up, half down -> net 0
        hwm.max_of(static_cast<std::int64_t>(i));
        h.record(i % 1024);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(churn.value(), 0);
  EXPECT_EQ(hwm.value(), static_cast<std::int64_t>(kPerThread) - 1);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

// --------------------------------------------------------------- metrics ---

TEST(Histogram, BucketsAndQuantiles) {
  Histogram h;
  h.record(0);    // bucket 0
  h.record(1);    // bucket 1
  h.record(3);    // bucket 2: [2, 4)
  h.record(100);  // bucket 7: [64, 128)
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 104u);
  const HistogramBuckets snap = h.snapshot();
  EXPECT_EQ(snap[0], 1u);
  EXPECT_EQ(snap[1], 1u);
  EXPECT_EQ(snap[2], 1u);
  EXPECT_EQ(snap[7], 1u);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(1.0), 128.0);  // bucket 7's upper bound
}

TEST(Histogram, OverflowLandsInTheLastBucket) {
  // Satellite (b): us >= 2^63 must clamp into bucket 64, never index
  // past the array, and keep the quantile walk finite.
  Histogram h;
  h.record(~std::uint64_t{0});
  h.record(std::uint64_t{1} << 63);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.snapshot()[64], 2u);
  EXPECT_EQ(h.quantile(0.99), std::ldexp(1.0, 64));
}

TEST(Histogram, QuantileFromOneSnapshot) {
  // bucket_quantile over an explicit merged array — the snapshot-once
  // pattern the dispatcher uses so p50/p95/p99 agree on one copy.
  Histogram a, b;
  for (int i = 0; i < 90; ++i) a.record(10);   // bucket 4
  for (int i = 0; i < 10; ++i) b.record(1000); // bucket 10
  HistogramBuckets merged{};
  a.merge_into(merged);
  b.merge_into(merged);
  EXPECT_EQ(bucket_quantile(merged, 0.50), 16.0);
  EXPECT_EQ(bucket_quantile(merged, 0.99), 1024.0);
  EXPECT_EQ(bucket_quantile(merged, 0.0), 16.0);
}

// ------------------------------------------------------------ exposition ---

TEST(Export, PrometheusGolden) {
  Registry reg;
  reg.counter("cgs_events_total").add(42);
  reg.gauge("cgs_depth").set(-3);
  Histogram& h = reg.histogram("cgs_lat_us");
  h.record(0);
  h.record(3);
  h.record(3);
  const std::string expected =
      "# TYPE cgs_depth gauge\n"
      "cgs_depth -3\n"
      "# TYPE cgs_events_total counter\n"
      "cgs_events_total 42\n"
      "# TYPE cgs_lat_us histogram\n"
      "cgs_lat_us_bucket{le=\"0\"} 1\n"
      "cgs_lat_us_bucket{le=\"1\"} 1\n"
      "cgs_lat_us_bucket{le=\"3\"} 3\n"
      "cgs_lat_us_bucket{le=\"+Inf\"} 3\n"
      "cgs_lat_us_sum 6\n"
      "cgs_lat_us_count 3\n";
  EXPECT_EQ(prometheus_text(reg), expected);
}

TEST(Export, EmptyHistogramIsCompact) {
  Registry reg;
  reg.histogram("cgs_idle_us");
  const std::string text = prometheus_text(reg);
  // Trailing empty buckets collapse: le="0", +Inf, sum, count and the
  // TYPE line only.
  EXPECT_EQ(text,
            "# TYPE cgs_idle_us histogram\n"
            "cgs_idle_us_bucket{le=\"0\"} 0\n"
            "cgs_idle_us_bucket{le=\"+Inf\"} 0\n"
            "cgs_idle_us_sum 0\n"
            "cgs_idle_us_count 0\n");
}

TEST(Export, JsonCarriesEveryMetric) {
  Registry reg;
  reg.counter("cgs_events_total").add(5);
  reg.histogram("cgs_lat_us").record(100);
  const std::string json = json_text(reg);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"cgs_events_total\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"cgs_lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\": 128"), std::string::npos);
}

// --------------------------------------------------------------- tracing ---

TEST(Trace, DisabledTracerCostsOneBranch) {
  Registry reg;
  Tracer tracer(reg, TraceOptions{.sample_every = 0, .slow_ring = 4});
  EXPECT_FALSE(tracer.enabled());
  Trace t = tracer.begin();
  EXPECT_FALSE(t.active);
  t.stamp(Stage::kEnqueued);  // all no-ops on an inert trace
  EXPECT_EQ(t.at(Stage::kEnqueued), 0u);
  tracer.finish(t);
  EXPECT_EQ(reg.histogram("cgs_trace_total_us").count(), 0u);
  EXPECT_TRUE(tracer.slowest().empty());
}

TEST(Trace, SampledStampsAreMonotoneAndRecorded) {
  Registry reg;
  Tracer tracer(reg, TraceOptions{.sample_every = 1, .slow_ring = 4});
  Trace t = tracer.begin();
  ASSERT_TRUE(t.active);
  EXPECT_GT(t.at(Stage::kReceived), 0u);  // begin() stamps received
  for (Stage s : {Stage::kEnqueued, Stage::kBatchClosed, Stage::kEngineStart,
                  Stage::kEngineEnd, Stage::kFulfilled, Stage::kFlushed})
    t.stamp(s);
  // steady_clock stamps taken in order never decrease.
  for (std::size_t i = 1; i < kNumStages; ++i)
    EXPECT_GE(t.stamps[i], t.stamps[i - 1]);
  tracer.finish(t);
  EXPECT_EQ(reg.counter("cgs_trace_sampled_total").value(), 1u);
  EXPECT_EQ(reg.histogram("cgs_trace_queue_wait_us").count(), 1u);
  EXPECT_EQ(reg.histogram("cgs_trace_compute_us").count(), 1u);
  EXPECT_EQ(reg.histogram("cgs_trace_write_stall_us").count(), 1u);
  EXPECT_EQ(reg.histogram("cgs_trace_total_us").count(), 1u);
}

TEST(Trace, WriteStallOnlyRecordsWhenFlushed) {
  Registry reg;
  Tracer tracer(reg, TraceOptions{.sample_every = 1, .slow_ring = 0});
  Trace t = tracer.begin();
  ASSERT_TRUE(t.active);
  t.stamp(Stage::kFulfilled);  // fulfilled but never flushed (no transport)
  tracer.finish(t);
  EXPECT_EQ(reg.histogram("cgs_trace_write_stall_us").count(), 0u);
  EXPECT_EQ(reg.histogram("cgs_trace_total_us").count(), 1u);
}

TEST(Trace, SamplingRateIsOneInN) {
  Registry reg;
  Tracer tracer(reg, TraceOptions{.sample_every = 8, .slow_ring = 0});
  int active = 0;
  for (int i = 0; i < 64; ++i)
    if (tracer.begin().active) ++active;
  EXPECT_EQ(active, 8);
}

TEST(Trace, SlowRingKeepsTheSlowestAndStaysBounded) {
  Registry reg;
  constexpr std::size_t kRing = 4;
  Tracer tracer(reg, TraceOptions{.sample_every = 1, .slow_ring = kRing});
  // 20 traces with hand-built totals 1..20us (stamp_at for determinism).
  for (std::uint64_t total = 1; total <= 20; ++total) {
    Trace t = tracer.begin();
    ASSERT_TRUE(t.active);
    const std::uint64_t start = t.at(Stage::kReceived);
    t.stamp_at(Stage::kFulfilled, start + total);
    tracer.finish(t);
  }
  const std::vector<SlowTrace> slow = tracer.slowest();
  ASSERT_EQ(slow.size(), kRing);
  for (std::size_t i = 0; i < slow.size(); ++i) {
    EXPECT_EQ(slow[i].total_us, 20 - i);  // slowest first: 20, 19, 18, 17
    EXPECT_GT(slow[i].stamps[0], 0u);
  }
}

// ------------------------------------------------------ windowed metrics ---

TEST(Windowed, CounterAgesOutOldEpochs) {
  Registry reg;
  WindowOptions w;
  w.epoch_us = 1000;  // 1 ms epochs so the test can steer time by hand
  w.epochs = 4;
  WindowedCounter& wc = reg.windowed_counter("cgs_win_reqs_total", w);

  // Three epochs of traffic at synthetic timestamps.
  wc.add_at(5, 10'500);   // epoch 10
  wc.add_at(7, 11'500);   // epoch 11
  wc.add_at(1, 12'500);   // epoch 12
  EXPECT_EQ(wc.window_count(12'999), 13u);  // window = epochs 9..12

  // Two epochs later, epoch 10 has aged out (window = 11..14).
  EXPECT_EQ(wc.window_count(14'500), 8u);
  // Far in the future everything ages out; the cumulative global keeps all.
  EXPECT_EQ(wc.window_count(1'000'000), 0u);
  const double rate = wc.rate_per_s(12'999);
  EXPECT_NEAR(rate, 13.0 / (4 * 0.001), 1e-6);
}

TEST(Windowed, HistogramWindowQuantilesMatchGlobal) {
  Registry reg;
  WindowedHistogram& wh = reg.windowed_histogram("cgs_win_lat_us");
  for (int i = 0; i < 90; ++i) wh.record(100);
  for (int i = 0; i < 10; ++i) wh.record(9000);
  // All records land in the current (10 s) epoch: window == lifetime.
  EXPECT_EQ(wh.window_count(), 100u);
  EXPECT_LE(wh.window_quantile(0.50), 128.0);
  EXPECT_GT(wh.window_quantile(0.99), 8000.0);
  // The wrapped cumulative histogram saw every record too.
  bool found = false;
  for (const Sample& s : reg.collect()) {
    if (s.name == "cgs_win_lat_us" && s.labels.empty()) {
      EXPECT_EQ(s.count, 100u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// The TSan job's target: 8 threads hammer one windowed counter and one
// windowed histogram through live rotations (tiny epochs force thousands
// of CAS rotations). The invariant rotation must preserve: the cumulative
// global loses nothing, and window reads never see the rotation sentinel.
TEST(Windowed, RotationUnderEightThreadHammer) {
  Registry reg;
  WindowOptions w;
  w.epoch_us = 100;  // 0.1 ms epochs -> rotations every few iterations
  w.epochs = 4;
  WindowedCounter& wc = reg.windowed_counter("cgs_win_hammer_total", w);
  WindowedHistogram& wh = reg.windowed_histogram("cgs_win_hammer_us", w);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        wc.add(1);
        wh.record(static_cast<std::uint64_t>((t * kPerThread + i) % 512));
        if (i % 64 == 0) {
          (void)wc.window_count();
          (void)wh.window_quantile(0.95);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  std::uint64_t global_counter = 0, global_hist = 0;
  for (const Sample& s : reg.collect()) {
    if (s.name == "cgs_win_hammer_total" && s.labels.empty())
      global_counter = static_cast<std::uint64_t>(s.value);
    if (s.name == "cgs_win_hammer_us" && s.labels.empty())
      global_hist = s.count;
  }
  EXPECT_EQ(global_counter, kTotal);  // the global never loses a count
  EXPECT_EQ(global_hist, kTotal);
  // Window slices are a subset of history, and reading them mid- or
  // post-hammer must not deadlock or return sentinel garbage.
  EXPECT_LE(wc.window_count(), kTotal);
  EXPECT_LE(wh.window_count(), kTotal);
}

// ------------------------------------------------------ labeled families ---

TEST(Labels, CanonicalRenderingSortsAndEscapes) {
  LabelSet ls{{"zeta", "b"}, {"alpha", "say \"hi\"\n"}};
  EXPECT_EQ(ls.canonical(), "alpha=\"say \\\"hi\\\"\\n\",zeta=\"b\"");
  EXPECT_THROW(LabelSet{}.set("9bad", "v"), Error);
  EXPECT_THROW(LabelSet{}.set("has space", "v"), Error);
  EXPECT_EQ(tenant_label(0xdeadbeefull), "00000000deadbeef");
}

TEST(Labels, FamilySumsToGlobalUnderChurnAndStaysBounded) {
  Registry reg;
  FamilyOptions fo;
  fo.max_series = 8;
  CounterFamily& fam = reg.counter_family("cgs_tenant_test_total", fo);

  // Two hot tenants touched repeatedly (promoted), then a churn sweep of
  // one-shot tenants far beyond the cap.
  std::uint64_t expected = 0;
  for (int i = 0; i < 10; ++i) {
    fam.add(LabelSet{{"tenant", tenant_label(1)}});
    fam.add(LabelSet{{"tenant", tenant_label(2)}});
    expected += 2;
  }
  for (std::uint64_t t = 100; t < 600; ++t) {
    fam.add(LabelSet{{"tenant", tenant_label(t)}});
    ++expected;
  }

  EXPECT_LE(fam.series(), fo.max_series);
  EXPECT_GT(fam.folds(), 0u);

  // Folding means no observation is ever dropped: labeled cells plus the
  // overflow cell re-add exactly to the global.
  std::uint64_t labeled_sum = 0;
  bool hot_survived = false;
  for (const auto& cell : fam.collect()) {
    labeled_sum += cell.value;
    if (cell.labels.find(tenant_label(1)) != std::string::npos)
      hot_survived = true;
  }
  EXPECT_EQ(labeled_sum, expected);
  EXPECT_TRUE(hot_survived) << "churn displaced a protected hot tenant";

  std::uint64_t global = 0;
  for (const Sample& s : reg.collect())
    if (s.name == "cgs_tenant_test_total" && s.labels.empty())
      global = static_cast<std::uint64_t>(s.value);
  EXPECT_EQ(global, expected);
}

TEST(Labels, HistogramFamilyFoldsPreserveCounts) {
  Registry reg;
  FamilyOptions fo;
  fo.max_series = 4;
  HistogramFamily& fam = reg.histogram_family("cgs_tenant_lat_us", fo);
  std::uint64_t expected = 0;
  for (std::uint64_t t = 0; t < 32; ++t) {
    fam.record(LabelSet{{"tenant", tenant_label(t)}}, 100 + t);
    ++expected;
  }
  EXPECT_LE(fam.series(), fo.max_series);
  std::uint64_t labeled_count = 0;
  for (const auto& cell : fam.collect()) labeled_count += cell.count;
  EXPECT_EQ(labeled_count, expected);
}

TEST(Labels, FoldsEmitSeriesFoldEvents) {
  Registry reg;
  CounterFamily& fam =
      reg.counter_family("cgs_tenant_fold_total", {.max_series = 2});
  for (std::uint64_t t = 0; t < 10; ++t)
    fam.add(LabelSet{{"tenant", tenant_label(t)}});
  // The registry wired its own event log into the family.
  EXPECT_EQ(reg.events().count(EventKind::kSeriesFold), fam.folds());
  EXPECT_GT(fam.folds(), 0u);
}

// -------------------------------------------------------------- event log ---

TEST(Events, EmitSnapshotAndLifetimeCounts) {
  EventLog log;
  log.emit(EventKind::kOverloadShed, 3, 250, "reactor 3");
  log.emit(EventKind::kKvCompaction, 4096, 17, "key_state.log");
  log.emit(EventKind::kOverloadShed, 1, 250);

  const std::vector<Event> events = log.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].kind, EventKind::kOverloadShed);
  EXPECT_EQ(events[0].a, 3u);
  EXPECT_EQ(events[0].b, 250u);
  EXPECT_STREQ(events[0].detail, "reactor 3");
  EXPECT_EQ(events[1].kind, EventKind::kKvCompaction);
  EXPECT_STREQ(events[1].detail, "key_state.log");
  EXPECT_STREQ(events[2].detail, "");
  EXPECT_EQ(log.count(EventKind::kOverloadShed), 2u);
  EXPECT_EQ(log.count(EventKind::kKvCompaction), 1u);
  EXPECT_EQ(log.total(), 3u);

  // Oversized detail strings truncate into the inline buffer, no alloc.
  log.emit(EventKind::kKeygenStart, 512, 0, std::string(200, 'x'));
  const std::vector<Event> after = log.snapshot();
  EXPECT_EQ(std::strlen(after.back().detail), sizeof(Event{}.detail) - 1);
}

TEST(Events, RingWrapKeepsMostRecentCountsEverything) {
  EventLog log(8);
  for (std::uint64_t i = 1; i <= 20; ++i)
    log.emit(EventKind::kCacheEviction, i);
  const std::vector<Event> events = log.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 13 + i);  // the 8 most recent, oldest first
    EXPECT_EQ(events[i].a, 13 + i);
  }
  EXPECT_EQ(log.total(), 20u);                               // never wraps
  EXPECT_EQ(log.count(EventKind::kCacheEviction), 20u);
}

TEST(Events, PrometheusExpositionCarriesPerKindCounters) {
  Registry reg;
  reg.events().emit(EventKind::kTornTailRecovery, 128, 4096, "kv.log");
  reg.events().emit(EventKind::kKeygenStart, 512);
  const std::string text = prometheus_text(reg);
  EXPECT_NE(text.find("cgs_obs_events_total{kind=\"torn_tail_recovery\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cgs_obs_events_total{kind=\"keygen_start\"} 1"),
            std::string::npos);
  const std::string json = json_text(reg);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("torn_tail_recovery"), std::string::npos);
}

// ------------------------------------------------- trace context & exemplars ---

TEST(Trace, WireTraceIdForcesSamplingAndSurvives) {
  Registry reg;
  TraceOptions topts;
  topts.sample_every = 1'000'000;  // local sampling effectively off
  Tracer tracer(reg, topts);
  Trace t = tracer.begin(0x7ace1dull);
  EXPECT_TRUE(t.active);
  EXPECT_EQ(t.trace_id, 0x7ace1dull);

  // sample_every == 0 is the global off switch: even wire ids are ignored.
  TraceOptions off;
  off.sample_every = 0;
  Tracer disabled(reg, off);
  EXPECT_FALSE(disabled.begin(0x7ace1dull).active);
}

TEST(Trace, ExemplarTraceIdsSurfaceInExposition) {
  Registry reg;
  Histogram& h = reg.histogram("cgs_exemplar_us");
  h.record(100, 0xdeadbeefull);
  const std::string text = prometheus_text(reg);
  EXPECT_NE(text.find("# exemplar cgs_exemplar_us_bucket"), std::string::npos);
  EXPECT_NE(text.find("trace_id=\"00000000deadbeef\""), std::string::npos);
  const std::string json = json_text(reg);
  EXPECT_NE(json.find("tail_exemplar_trace_id"), std::string::npos);
}

// ----------------------------------------------------------- wire frames ---

TEST(StatsWire, RequestRoundTrip) {
  serve::StatsRequestFrame req;
  req.request_id = 77;
  req.format = serve::StatsFormat::kJson;
  const std::vector<std::uint8_t> encoded = serve::encode(req);
  // Strip the u32 length prefix the stream layer owns.
  const std::span<const std::uint8_t> frame(encoded.data() + 4,
                                            encoded.size() - 4);
  EXPECT_EQ(serial::peek_tag(frame), serial::TypeTag::kStatsRequest);
  const serve::StatsRequestFrame back = serve::decode_stats_request(frame);
  EXPECT_EQ(back.request_id, 77u);
  EXPECT_EQ(back.format, serve::StatsFormat::kJson);
}

TEST(StatsWire, ResponseRoundTripSuccessAndFailure) {
  const serve::StatsResponseFrame ok = serve::StatsResponseFrame::success(
      5, serve::StatsFormat::kPrometheus, "# TYPE x counter\nx 1\n");
  std::vector<std::uint8_t> encoded = serve::encode(ok);
  serve::StatsResponseFrame back = serve::decode_stats_response(
      std::span<const std::uint8_t>(encoded.data() + 4, encoded.size() - 4));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.request_id, 5u);
  EXPECT_EQ(back.format, serve::StatsFormat::kPrometheus);
  EXPECT_EQ(back.text, "# TYPE x counter\nx 1\n");

  const serve::StatsResponseFrame bad =
      serve::StatsResponseFrame::failure(6, "no registry");
  encoded = serve::encode(bad);
  back = serve::decode_stats_response(
      std::span<const std::uint8_t>(encoded.data() + 4, encoded.size() - 4));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.request_id, 6u);
  EXPECT_EQ(back.error, "no registry");
}

TEST(StatsWire, MalformedFormatByteThrows) {
  serve::StatsRequestFrame req;
  req.request_id = 1;
  req.format = static_cast<serve::StatsFormat>(9);  // not a valid selector
  const std::vector<std::uint8_t> encoded = serve::encode(req);
  EXPECT_THROW(
      serve::decode_stats_request(std::span<const std::uint8_t>(
          encoded.data() + 4, encoded.size() - 4)),
      serial::SerialError);
}

}  // namespace
}  // namespace cgs::obs
