// End-to-end smoke checks of the synthesis pipeline: leaf enumeration
// against brute-force Alg.1 walks, bit-exact equivalence of the bitsliced
// sampler with the reference sampler, and Theorem-1 structure.

#include <gtest/gtest.h>

#include "ct/bitsliced_sampler.h"
#include "ct/flat_baseline.h"
#include "ct/synthesis.h"
#include "ddg/kysampler.h"
#include "prng/splitmix.h"
#include "stats/chisquare.h"

namespace cgs {
namespace {

gauss::ProbMatrix small_matrix() {
  return gauss::ProbMatrix(gauss::GaussianParams::sigma_2(/*precision=*/16));
}

TEST(PipelineSmoke, LeafEnumerationMatchesWalk) {
  const auto m = small_matrix();
  const ddg::KnuthYaoSampler ref(m);
  const ct::LeafList list = ct::enumerate_leaves(m);
  ASSERT_FALSE(list.leaves.empty());
  for (const ct::Leaf& leaf : list.leaves) {
    const auto walk = ref.walk_bits(leaf.bits());
    ASSERT_TRUE(walk.has_value()) << "leaf string misses: level=" << leaf.level;
    EXPECT_EQ(walk->value, leaf.value);
    EXPECT_EQ(walk->bits_used, leaf.level + 1);
  }
}

TEST(PipelineSmoke, BitslicedMatchesReferenceDistribution) {
  const auto m = small_matrix();
  ct::SynthesisConfig cfg;
  auto synth = ct::synthesize(m, cfg);
  ct::BitslicedSampler sampler(std::move(synth));

  prng::SplitMix64Source rng(42);
  stats::Histogram h;
  std::int32_t batch[64];
  for (int it = 0; it < 4000; ++it) {
    const std::uint64_t valid = sampler.sample_batch(rng, batch);
    for (int lane = 0; lane < 64; ++lane)
      if ((valid >> lane) & 1u) h.add(batch[lane]);
  }
  const auto res = stats::chi_square_signed(h, m);
  EXPECT_GT(res.p_value, 1e-6) << "chi2=" << res.statistic
                               << " dof=" << res.dof;
}

TEST(PipelineSmoke, NetlistAgreesWithReferenceOnAllStrings) {
  // Exhaustive: precision 12 -> 4096 input strings, compare netlist output
  // with the reference walk for every single one.
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_1(12));
  const ddg::KnuthYaoSampler ref(m);
  auto synth = ct::synthesize(m, {});
  const int n = synth.precision;
  const int mbits = synth.num_output_bits;
  for (std::uint32_t x = 0; x < (1u << n); ++x) {
    std::vector<int> bits(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) bits[static_cast<std::size_t>(i)] = (x >> i) & 1u;
    const auto out = synth.netlist.eval_bits(bits);
    const auto walk = ref.walk_bits(bits);
    const bool valid = out[static_cast<std::size_t>(mbits)] != 0;
    ASSERT_EQ(valid, walk.has_value()) << "x=" << x;
    if (walk) {
      std::uint32_t v = 0;
      for (int iota = 0; iota < mbits; ++iota)
        v |= static_cast<std::uint32_t>(out[static_cast<std::size_t>(iota)])
             << iota;
      ASSERT_EQ(v, walk->value) << "x=" << x;
    }
  }
}

TEST(PipelineSmoke, FlatBaselineAgreesToo) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_1(12));
  const ddg::KnuthYaoSampler ref(m);
  auto synth = ct::synthesize_flat(m, {});
  const int n = synth.precision;
  const int mbits = synth.num_output_bits;
  for (std::uint32_t x = 0; x < (1u << n); ++x) {
    std::vector<int> bits(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) bits[static_cast<std::size_t>(i)] = (x >> i) & 1u;
    const auto out = synth.netlist.eval_bits(bits);
    const auto walk = ref.walk_bits(bits);
    ASSERT_EQ(out[static_cast<std::size_t>(mbits)] != 0, walk.has_value());
    if (walk) {
      std::uint32_t v = 0;
      for (int iota = 0; iota < mbits; ++iota)
        v |= static_cast<std::uint32_t>(out[static_cast<std::size_t>(iota)])
             << iota;
      ASSERT_EQ(v, walk->value);
    }
  }
}

TEST(PipelineSmoke, Theorem1DeltaForSigma2) {
  // Paper §5 reports Delta = 4 for sigma = 2; the exact constant depends on
  // the probability-table pipeline (normalizer, rounding). Ours measures 5
  // at n = 128 — same order, structural claim intact. Golden-tested here so
  // regressions surface.
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  const auto list = ct::enumerate_leaves(m);
  EXPECT_EQ(list.delta, 5);
  EXPECT_LE(list.delta, 6);  // the paper-level claim: Delta stays tiny
}

}  // namespace
}  // namespace cgs
