// PRNG correctness: ChaCha20 against the RFC 8439 vector, SHAKE against the
// NIST empty-message digests, plus stream/bit-buffer semantics.

#include <gtest/gtest.h>

#include <cstring>

#include "prng/chacha20.h"
#include "prng/keccak.h"
#include "prng/splitmix.h"

namespace cgs::prng {
namespace {

std::string hex(std::span<const std::uint8_t> b) {
  static const char* d = "0123456789abcdef";
  std::string s;
  for (std::uint8_t x : b) {
    s += d[x >> 4];
    s += d[x & 15];
  }
  return s;
}

TEST(ChaCha20, Rfc8439BlockVector) {
  std::array<std::uint8_t, 32> key{};
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  std::array<std::uint8_t, 12> nonce = {0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  std::array<std::uint8_t, 64> block{};
  chacha20_block(key, nonce, 1, block);
  EXPECT_EQ(hex(block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(Shake, Shake128EmptyMessage) {
  std::vector<std::uint8_t> out =
      Shake::hash(Shake::Variant::kShake128, {}, 32);
  EXPECT_EQ(hex(out),
            "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26");
}

TEST(Shake, Shake256EmptyMessage) {
  std::vector<std::uint8_t> out =
      Shake::hash(Shake::Variant::kShake256, {}, 32);
  EXPECT_EQ(hex(out),
            "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f");
}

TEST(Shake, IncrementalAbsorbMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Shake a(Shake::Variant::kShake256);
  a.absorb(msg);
  std::vector<std::uint8_t> out1(64);
  a.squeeze(out1);

  Shake b(Shake::Variant::kShake256);
  b.absorb(msg.substr(0, 10));
  b.absorb(msg.substr(10));
  std::vector<std::uint8_t> out2(64);
  b.squeeze(out2);
  EXPECT_EQ(out1, out2);
}

TEST(Shake, SqueezeInPiecesMatches) {
  Shake a(Shake::Variant::kShake128);
  a.absorb("seed");
  std::vector<std::uint8_t> big(300);
  a.squeeze(big);

  Shake b(Shake::Variant::kShake128);
  b.absorb("seed");
  std::vector<std::uint8_t> parts(300);
  for (std::size_t off = 0; off < 300; off += 37) {
    const std::size_t len = std::min<std::size_t>(37, 300 - off);
    b.squeeze(std::span<std::uint8_t>(parts.data() + off, len));
  }
  EXPECT_EQ(big, parts);
}

TEST(Sources, DeterministicPerSeed) {
  ChaCha20Source a(7), b(7), c(8);
  ShakeSource d(7), e(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_word(), b.next_word());
    EXPECT_EQ(d.next_word(), e.next_word());
  }
  bool differs = false;
  ChaCha20Source a2(7);
  for (int i = 0; i < 10; ++i) differs |= a2.next_word() != c.next_word();
  EXPECT_TRUE(differs);
}

TEST(Sources, BitBufferIsLsbFirst) {
  DeterministicBitSource src({1, 0, 1, 1, 0, 0, 0, 1});
  // next_word packs bits LSB-first; next_bit consumes in the same order.
  EXPECT_EQ(src.next_bit(), 1);
  EXPECT_EQ(src.next_bit(), 0);
  EXPECT_EQ(src.next_bit(), 1);
  EXPECT_EQ(src.next_bit(), 1);
  EXPECT_EQ(src.next_bit(), 0);
}

TEST(Sources, SplitMixUniformish) {
  SplitMix64Source s(1);
  int ones = 0;
  for (int i = 0; i < 1000; ++i) ones += __builtin_popcountll(s.next_word());
  // 64000 bits, expect ~32000 ones within 5 sigma (~630).
  EXPECT_NEAR(ones, 32000, 700);
}

TEST(Sources, ChaChaKeystreamBalance) {
  ChaCha20Source s(99);
  int ones = 0;
  for (int i = 0; i < 1000; ++i) ones += __builtin_popcountll(s.next_word());
  EXPECT_NEAR(ones, 32000, 700);
}

}  // namespace
}  // namespace cgs::prng
