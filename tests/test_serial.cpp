// Serialization subsystem: primitive round trips, byte-stable re-encoding,
// bit-identical sampler behavior after a round trip, and hard rejection of
// corrupted/foreign/version-skewed frames.

#include <gtest/gtest.h>

#include <vector>

#include "ct/bitsliced_sampler.h"
#include "prng/chacha20.h"
#include "serial/formats.h"
#include "serial/serial.h"

namespace cgs::serial {
namespace {

gauss::GaussianParams small_params() {
  return gauss::GaussianParams::sigma_1(48);
}

ct::SynthesizedSampler small_sampler() {
  const gauss::ProbMatrix m(small_params());
  return ct::synthesize(m, {});
}

TEST(WriterReader, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-12345);
  w.boolean(true);
  w.boolean(false);
  w.str("sigma=2");
  const auto bytes = w.take();

  Reader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -12345);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "sigma=2");
  EXPECT_NO_THROW(r.finish());
}

TEST(WriterReader, OverrunThrows) {
  Writer w;
  w.u32(7);
  const auto bytes = w.take();
  Reader r(bytes);
  r.u32();
  EXPECT_THROW(r.u8(), SerialError);
}

TEST(WriterReader, MalformedBooleanThrows) {
  const std::vector<std::uint8_t> bytes = {2};
  Reader r(bytes);
  EXPECT_THROW(r.boolean(), SerialError);
}

TEST(WriterReader, StringLengthBeyondDataThrows) {
  Writer w;
  w.u64(1000);  // claims 1000 bytes, provides none
  const auto bytes = w.take();
  Reader r(bytes);
  EXPECT_THROW(r.str(), SerialError);
}

TEST(Frame, UnwrapRejectsCorruption) {
  const auto synth = small_sampler();
  const auto good = serialize(small_params(), {}, synth);
  ASSERT_NO_THROW(deserialize_sampler(good));

  {  // bad magic
    auto bad = good;
    bad[0] ^= 0xFF;
    EXPECT_THROW(deserialize_sampler(bad), SerialError);
  }
  {  // future format version
    auto bad = good;
    bad[4] += 1;
    EXPECT_THROW(deserialize_sampler(bad), SerialError);
  }
  {  // wrong type tag (a sampler frame is not a netlist frame)
    EXPECT_THROW(deserialize_netlist(good), SerialError);
  }
  {  // truncated payload
    auto bad = good;
    bad.resize(bad.size() - 5);
    EXPECT_THROW(deserialize_sampler(bad), SerialError);
  }
  {  // truncated mid-header
    std::vector<std::uint8_t> bad(good.begin(), good.begin() + 10);
    EXPECT_THROW(deserialize_sampler(bad), SerialError);
  }
  {  // single flipped payload bit -> checksum mismatch
    auto bad = good;
    bad[bad.size() / 2] ^= 0x10;
    EXPECT_THROW(deserialize_sampler(bad), SerialError);
  }
  {  // trailing garbage
    auto bad = good;
    bad.push_back(0);
    EXPECT_THROW(deserialize_sampler(bad), SerialError);
  }
  {  // empty input
    EXPECT_THROW(deserialize_sampler(std::vector<std::uint8_t>{}), SerialError);
  }
}

TEST(NetlistSerial, RoundTripIsByteStable) {
  const auto synth = small_sampler();
  const auto bytes1 = serialize(synth.netlist);
  const bf::Netlist back = deserialize_netlist(bytes1);
  const auto bytes2 = serialize(back);
  EXPECT_EQ(bytes1, bytes2);

  ASSERT_EQ(back.num_inputs(), synth.netlist.num_inputs());
  ASSERT_EQ(back.nodes().size(), synth.netlist.nodes().size());
  ASSERT_EQ(back.outputs(), synth.netlist.outputs());

  // Behavioral equivalence on random word inputs.
  prng::ChaCha20Source rng(77);
  std::vector<std::uint64_t> in(static_cast<std::size_t>(back.num_inputs()));
  std::vector<std::uint64_t> out_a(back.outputs().size());
  std::vector<std::uint64_t> out_b(back.outputs().size());
  for (int it = 0; it < 50; ++it) {
    rng.fill_words(in);
    synth.netlist.eval(in, out_a);
    back.eval(in, out_b);
    ASSERT_EQ(out_a, out_b) << "iteration " << it;
  }
}

TEST(NetlistSerial, FromPartsRejectsMalformedGraphs) {
  using bf::Node;
  using bf::Op;
  // Forward reference: node 0 uses node 1.
  EXPECT_THROW(bf::Netlist::from_parts(1, {Node{Op::kNot, 1, -1}}, {}), Error);
  // Input index out of range.
  EXPECT_THROW(bf::Netlist::from_parts(1, {Node{Op::kInput, 3, -1}}, {}),
               Error);
  // Output id out of range.
  EXPECT_THROW(
      bf::Netlist::from_parts(1, {Node{Op::kConst0, -1, -1}}, {5}), Error);
  // Negative operand on a binary op.
  EXPECT_THROW(
      bf::Netlist::from_parts(0, {Node{Op::kConst1, -1, -1},
                                  Node{Op::kAnd, 0, -1}}, {}),
      Error);
  // Valid minimal netlist passes.
  EXPECT_NO_THROW(
      bf::Netlist::from_parts(1, {Node{Op::kInput, 0, -1}}, {0}));
}

TEST(SamplerSerial, RoundTripPreservesEverything) {
  const auto synth = small_sampler();
  const auto bytes1 = serialize(small_params(), {}, synth);
  const SamplerFrame frame = deserialize_sampler(bytes1);
  const ct::SynthesizedSampler& back = frame.sampler;
  EXPECT_EQ(serialize(frame.params, frame.config, back), bytes1);

  // The frame carries the binding it was written with.
  EXPECT_EQ(frame.params.describe(), small_params().describe());
  EXPECT_EQ(frame.config.mode, ct::SynthesisConfig{}.mode);

  EXPECT_EQ(back.precision, synth.precision);
  EXPECT_EQ(back.num_output_bits, synth.num_output_bits);
  EXPECT_EQ(back.has_valid_bit, synth.has_valid_bit);
  EXPECT_EQ(back.stats.num_leaves, synth.stats.num_leaves);
  EXPECT_EQ(back.stats.max_kappa, synth.stats.max_kappa);
  EXPECT_EQ(back.stats.delta, synth.stats.delta);
  EXPECT_EQ(back.stats.cubes_raw, synth.stats.cubes_raw);
  EXPECT_EQ(back.stats.cubes_minimized, synth.stats.cubes_minimized);
  EXPECT_EQ(back.stats.netlist_ops, synth.stats.netlist_ops);
  EXPECT_EQ(back.stats.all_exact, synth.stats.all_exact);
}

TEST(SamplerSerial, RoundTrippedSamplerIsBitIdentical) {
  const auto params = gauss::GaussianParams::sigma_2(64);
  const gauss::ProbMatrix m(params);
  ct::SynthesizedSampler fresh = ct::synthesize(m, {});
  ct::SynthesizedSampler loaded =
      deserialize_sampler(serialize(params, {}, fresh)).sampler;

  ct::BitslicedSampler a(std::move(fresh));
  ct::BitslicedSampler b(std::move(loaded));
  prng::ChaCha20Source rng_a(2019), rng_b(2019);
  std::int32_t batch_a[64], batch_b[64];
  for (int it = 0; it < 200; ++it) {
    const std::uint64_t va = a.sample_batch(rng_a, batch_a);
    const std::uint64_t vb = b.sample_batch(rng_b, batch_b);
    ASSERT_EQ(va, vb);
    for (int lane = 0; lane < 64; ++lane)
      ASSERT_EQ(batch_a[lane], batch_b[lane]) << it << ":" << lane;
  }
}

TEST(ProbMatrixSerial, RoundTripIsByteStableAndExact) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(64));
  const auto bytes1 = serialize(m);
  const gauss::ProbMatrix back = deserialize_probmatrix(bytes1);
  EXPECT_EQ(serialize(back), bytes1);

  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.precision(), m.precision());
  for (std::size_t v = 0; v < m.rows(); ++v) {
    for (int i = 0; i < m.precision(); ++i)
      ASSERT_EQ(back.bit(v, i), m.bit(v, i)) << v << ":" << i;
    EXPECT_TRUE(back.probability(v) == m.probability(v));
    EXPECT_TRUE(back.exact_probability(v) == m.exact_probability(v));
  }
  for (int i = 0; i < m.precision(); ++i)
    EXPECT_EQ(back.column_weight(i), m.column_weight(i));
  EXPECT_TRUE(back.deficit() == m.deficit());
  EXPECT_EQ(back.clipped_bits(), m.clipped_bits());
  EXPECT_EQ(back.params().describe(), m.params().describe());
}

TEST(ProbMatrixSerial, OddPrecisionPacksCorrectly) {
  // 51 bits: exercises the partial final byte of the packed bit rows.
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_1(51));
  const gauss::ProbMatrix back = deserialize_probmatrix(serialize(m));
  for (std::size_t v = 0; v < m.rows(); ++v)
    for (int i = 0; i < m.precision(); ++i)
      ASSERT_EQ(back.bit(v, i), m.bit(v, i)) << v << ":" << i;
}

}  // namespace
}  // namespace cgs::serial
