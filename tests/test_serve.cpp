// The async serving layer: queue backpressure, QoS scheduling (priority
// bands, aging, per-tenant fair-share, deadline admission), micro-batch
// close policy (full batch vs linger), work stealing, dispatcher
// shutdown-drain semantics, multi-key shard isolation, concurrent-batch
// overlap through the signing service, metrics accounting, and the
// length-prefixed wire frames.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "engine/registry.h"
#include "falcon/verify.h"
#include "prng/chacha20.h"
#include "serial/serial.h"
#include "serve/batcher.h"
#include "serve/dispatcher.h"
#include "serve/metrics.h"
#include "serve/queue.h"
#include "serve/steal.h"
#include "serve/wire.h"

namespace cgs::serve {
namespace {

using Clock = std::chrono::steady_clock;

engine::SamplerRegistry& registry() {
  // In-process memo only: these tests must not depend on (or pollute) the
  // user's on-disk cache state.
  static engine::SamplerRegistry reg({.cache_dir = "", .use_disk = false});
  return reg;
}

const falcon::KeyPair& key_a() {
  static const falcon::KeyPair kp = [] {
    prng::ChaCha20Source rng(4242);
    return falcon::keygen(falcon::FalconParams::for_degree(64), rng);
  }();
  return kp;
}

const falcon::KeyPair& key_b() {
  static const falcon::KeyPair kp = [] {
    prng::ChaCha20Source rng(999);
    return falcon::keygen(falcon::FalconParams::for_degree(64), rng);
  }();
  return kp;
}

DispatcherOptions fast_options() {
  DispatcherOptions opts;
  opts.signing.backend = engine::Backend::kBitsliced;
  opts.signing.num_threads = 2;
  opts.signing.precision = 64;
  opts.signing.root_seed = 7;
  opts.gaussian.backend = engine::Backend::kBitsliced;
  opts.gaussian.num_threads = 1;
  opts.gaussian.root_seed = 7;
  return opts;
}

// ------------------------------------------------------------- queue -----

TEST(RequestQueue, BackpressureRejectsWhenFullAndAfterClose) {
  RequestQueue<int> q(2);
  EXPECT_EQ(q.try_push(1), SubmitStatus::kOk);
  EXPECT_EQ(q.try_push(2), SubmitStatus::kOk);
  EXPECT_EQ(q.try_push(3), SubmitStatus::kQueueFull);
  EXPECT_EQ(q.size(), 2u);

  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_EQ(q.try_push(4), SubmitStatus::kOk);  // capacity freed

  q.close();
  EXPECT_EQ(q.try_push(5), SubmitStatus::kShutdown);
  // Items accepted before close still drain, in order.
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 4);
  EXPECT_FALSE(q.pop(out));  // closed and drained
}

TEST(RequestQueue, PopUntilTimesOutOnEmpty) {
  RequestQueue<int> q(1);
  int out = 0;
  const auto t0 = Clock::now();
  EXPECT_FALSE(
      q.pop_until(out, t0 + std::chrono::milliseconds(30)));
  EXPECT_GE(Clock::now() - t0, std::chrono::milliseconds(25));
}

// --------------------------------------------------------- qos queue -----

TEST(QosQueue, StrictPriorityOrderAcrossBands) {
  QosQueue<int> q({.capacity = 16, .age_promote_us = 0});
  // Interleaved arrival; band order, not arrival order, decides.
  ASSERT_EQ(q.try_push(30, Priority::kBackground, 1), SubmitStatus::kOk);
  ASSERT_EQ(q.try_push(20, Priority::kBulk, 1), SubmitStatus::kOk);
  ASSERT_EQ(q.try_push(10, Priority::kInteractive, 1), SubmitStatus::kOk);
  ASSERT_EQ(q.try_push(11, Priority::kInteractive, 2), SubmitStatus::kOk);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.band_size(Priority::kInteractive), 2u);
  EXPECT_EQ(q.band_size(Priority::kBulk), 1u);

  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 10);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 11);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 20);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 30);
  const QosQueueStats s = q.stats();
  EXPECT_EQ(s.priority_inversions, 0u);
  EXPECT_EQ(s.aged_promotions, 0u);
}

TEST(QosQueue, AgingValvePromotesStarvedLowerBand) {
  QosQueue<int> q({.capacity = 16, .age_promote_us = 2000});
  ASSERT_EQ(q.try_push(99, Priority::kBackground, 7), SubmitStatus::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(q.try_push(1, Priority::kInteractive, 8), SubmitStatus::kOk);

  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 99);  // waited past the valve: served ahead of interactive
  QosQueueStats s = q.stats();
  EXPECT_EQ(s.aged_promotions, 1u);
  EXPECT_EQ(s.priority_inversions, 0u);  // the valve is not an inversion
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
}

TEST(QosQueue, DrrInterleavesTenantsWithinABand) {
  QosQueueOptions opts;
  opts.capacity = 32;
  opts.age_promote_us = 0;
  opts.drr_quantum = 1;
  QosQueue<int> q(opts);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(q.try_push(100 + i, Priority::kInteractive, 1),
              SubmitStatus::kOk);
    ASSERT_EQ(q.try_push(200 + i, Priority::kInteractive, 2),
              SubmitStatus::kOk);
  }
  // Quantum 1: strict alternation — neither tenant's burst monopolizes
  // the band, each keeps FIFO order within itself.
  std::vector<int> order;
  int out = 0;
  while (q.size() != 0) {
    ASSERT_TRUE(q.pop(out));
    order.push_back(out);
  }
  EXPECT_EQ(order,
            (std::vector<int>{100, 200, 101, 201, 102, 202, 103, 203}));
}

TEST(QosQueue, TenantCapShedsOnlyTheStormingTenant) {
  QosQueueOptions opts;
  opts.capacity = 16;
  opts.tenant_capacity = 2;
  QosQueue<int> q(opts);
  ASSERT_EQ(q.try_push(1, Priority::kInteractive, 0xA), SubmitStatus::kOk);
  ASSERT_EQ(q.try_push(2, Priority::kInteractive, 0xA), SubmitStatus::kOk);
  // Tenant A is at its cap; tenant B admits at the same instant.
  EXPECT_EQ(q.try_push(3, Priority::kInteractive, 0xA),
            SubmitStatus::kTenantFull);
  EXPECT_EQ(q.try_push(4, Priority::kInteractive, 0xB), SubmitStatus::kOk);
  // The cap is per (band, tenant) depth, not a lifetime quota: draining
  // one of A's items readmits A.
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(q.try_push(5, Priority::kInteractive, 0xA), SubmitStatus::kOk);
  EXPECT_EQ(q.stats().tenant_rejections, 1u);
}

TEST(QosQueue, TenantSlotTableIsBoundedWithOverflow) {
  QosQueueOptions opts;
  opts.capacity = 16;
  opts.max_tenants = 2;
  QosQueue<int> q(opts);
  ASSERT_EQ(q.try_push(1, Priority::kInteractive, 101), SubmitStatus::kOk);
  ASSERT_EQ(q.try_push(2, Priority::kInteractive, 102), SubmitStatus::kOk);
  // A third tenant still admits — into the band's shared overflow
  // sub-queue — without growing the slot table.
  ASSERT_EQ(q.try_push(3, Priority::kInteractive, 103), SubmitStatus::kOk);
  ASSERT_EQ(q.try_push(4, Priority::kInteractive, 104), SubmitStatus::kOk);
  EXPECT_EQ(q.stats().tenant_slots, 2u);
  EXPECT_EQ(q.size(), 4u);
  // Everything drains; slots are reclaimed as sub-queues empty.
  int out = 0;
  std::vector<int> drained;
  while (q.size() != 0) {
    ASSERT_TRUE(q.pop(out));
    drained.push_back(out);
  }
  EXPECT_EQ(drained.size(), 4u);
  EXPECT_EQ(q.stats().tenant_slots, 0u);
}

TEST(QosQueue, GlobalCapacityAndCloseKeepRequestQueueContract) {
  QosQueueOptions opts;
  opts.capacity = 2;
  QosQueue<int> q(opts);
  ASSERT_EQ(q.try_push(1, Priority::kBulk, 1), SubmitStatus::kOk);
  ASSERT_EQ(q.try_push(2, Priority::kInteractive, 2), SubmitStatus::kOk);
  EXPECT_EQ(q.try_push(3, Priority::kInteractive, 3),
            SubmitStatus::kQueueFull);
  q.close();
  EXPECT_EQ(q.try_push(4, Priority::kInteractive, 1),
            SubmitStatus::kShutdown);
  // Items accepted before close still drain (priority order), then the
  // consumer loop ends.
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(q.pop(out));
}

// ------------------------------------------------------ work stealing ----

TEST(TaskCrew, RunExecutesEveryTaskExactlyOnce) {
  TaskCrew crew(2);
  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> hits(kTasks);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i)
    tasks.push_back([&hits, i] { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  crew.run(std::move(tasks));  // returns only when every task ran
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskCrew, ThievesHelpAndNothingOutlivesRun) {
  TaskCrew crew(0);  // no dedicated workers: just the master and thieves
  std::atomic<int> done{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 32; ++i)
    tasks.push_back([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      done.fetch_add(1);
    });
  std::atomic<bool> stop{false};
  std::thread thief([&] {
    while (!stop.load())
      if (!crew.try_help_one()) std::this_thread::yield();
  });
  crew.run(std::move(tasks));
  EXPECT_EQ(done.load(), 32);  // run() is the barrier, stolen or not
  stop.store(true);
  thief.join();
  EXPECT_FALSE(crew.try_help_one());  // nothing pending after run returns
}

// ----------------------------------------------------------- batcher -----

TEST(MicroBatcher, FullBatchClosesWithoutWaitingForLinger) {
  RequestQueue<int> q(16);
  // Linger far beyond any sane test runtime: if the batcher waited for it
  // on a full batch, this test would time out rather than pass slowly.
  MicroBatcher<int> batcher(q, 4, std::chrono::seconds(600));
  for (int i = 0; i < 7; ++i) ASSERT_EQ(q.try_push(int(i)), SubmitStatus::kOk);

  std::vector<int> batch;
  const auto t0 = Clock::now();
  ASSERT_TRUE(batcher.next_batch(batch));
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(10));
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));  // closed on max_batch
  q.close();  // otherwise the partial leftovers batch would sit out the
              // (deliberately absurd) linger
  ASSERT_TRUE(batcher.next_batch(batch));
  EXPECT_EQ(batch, (std::vector<int>{4, 5, 6}));
}

TEST(MicroBatcher, LingerClosesPartialBatch) {
  RequestQueue<int> q(16);
  MicroBatcher<int> batcher(q, 64, std::chrono::milliseconds(40));
  ASSERT_EQ(q.try_push(11), SubmitStatus::kOk);
  std::vector<int> batch;
  const auto t0 = Clock::now();
  ASSERT_TRUE(batcher.next_batch(batch));
  const auto waited = Clock::now() - t0;
  EXPECT_EQ(batch, std::vector<int>{11});
  // Closed by the linger deadline: waited roughly max_linger, nowhere near
  // "forever for 63 more requests".
  EXPECT_GE(waited, std::chrono::milliseconds(35));
  EXPECT_LT(waited, std::chrono::seconds(30));
}

// The leftovers batch above closes by linger too (queue empty): document
// that a closed queue ends the loop instead.
TEST(MicroBatcher, ClosedAndDrainedEndsTheLoop) {
  RequestQueue<int> q(4);
  MicroBatcher<int> batcher(q, 2, std::chrono::milliseconds(5));
  ASSERT_EQ(q.try_push(1), SubmitStatus::kOk);
  q.close();
  std::vector<int> batch;
  ASSERT_TRUE(batcher.next_batch(batch));  // drains the accepted item
  EXPECT_EQ(batch, std::vector<int>{1});
  EXPECT_FALSE(batcher.next_batch(batch));  // loop exit
  EXPECT_TRUE(batch.empty());
}

TEST(MicroBatcher, IdleWorkRunsWhileWaitingForFirstItem) {
  RequestQueue<int> q(4);
  MicroBatcher<int> batcher(q, 2, std::chrono::milliseconds(1));
  std::atomic<int> polls{0};
  batcher.set_idle_work([&polls] {
    polls.fetch_add(1);
    return false;  // nothing to steal: the batcher keeps poll-slicing
  });
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    (void)q.try_push(5);
  });
  std::vector<int> batch;
  ASSERT_TRUE(batcher.next_batch(batch));
  producer.join();
  EXPECT_EQ(batch, std::vector<int>{5});
  // The idle hook ran repeatedly during the ~20ms empty wait, and the
  // batch still formed normally once work arrived.
  EXPECT_GE(polls.load(), 2);
}

TEST(MicroBatcher, DrivesQosQueueAndClosedLoopEnds) {
  QosQueueOptions opts;
  opts.capacity = 8;
  opts.age_promote_us = 0;
  QosQueue<int> q(opts);
  MicroBatcher<int, QosQueue<int>> batcher(q, 4,
                                           std::chrono::milliseconds(5));
  ASSERT_EQ(q.try_push(2, Priority::kBulk, 1), SubmitStatus::kOk);
  ASSERT_EQ(q.try_push(1, Priority::kInteractive, 1), SubmitStatus::kOk);
  std::vector<int> batch;
  ASSERT_TRUE(batcher.next_batch(batch));
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));  // popped in band order
  q.close();
  EXPECT_FALSE(batcher.next_batch(batch));
}

// --------------------------------------------------------- histogram -----

TEST(LatencyHistogram, QuantilesAreOrderedAndBucketed) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(100);   // bucket [64, 128)
  for (int i = 0; i < 9; ++i) h.record(1000);   // bucket [512, 1024)
  h.record(100000);                             // bucket [65536, 131072)
  EXPECT_EQ(h.count(), 100u);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_EQ(p50, 128.0);     // upper bound of the 100us bucket
  EXPECT_EQ(p95, 1024.0);    // the 1000us bucket
  EXPECT_EQ(p99, 1024.0);    // nearest-rank: the 99th of 100 obs
  EXPECT_EQ(h.quantile(0.0), 128.0);
  EXPECT_EQ(h.quantile(1.0), 131072.0);  // the outlier bucket
}

// -------------------------------------------------------- dispatcher -----

TEST(Dispatcher, ServesConcurrentClientsAndFillsBatches) {
  DispatcherOptions opts = fast_options();
  opts.max_batch = 8;
  opts.max_linger_us = 3000;
  opts.sign_lanes = 2;
  Dispatcher d(registry(), opts);
  const std::uint64_t id = d.add_key(key_a());

  constexpr int kClients = 4, kPerClient = 6;
  std::vector<std::future<falcon::Signature>> futures(
      static_cast<std::size_t>(kClients * kPerClient));
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int slot = c * kPerClient + i;
        while (true) {
          auto sub = d.submit(serve::SignRequest{.key_id = id, .message = "msg " + std::to_string(slot)});
          if (sub.ok()) {
            futures[static_cast<std::size_t>(slot)] = std::move(sub.future);
            break;
          }
          ASSERT_EQ(sub.status, SubmitStatus::kQueueFull);
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  const falcon::Verifier verifier(key_a().h, key_a().params);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const falcon::Signature sig = futures[i].get();
    EXPECT_TRUE(verifier.verify("msg " + std::to_string(i), sig)) << i;
  }

  const MetricsSnapshot m = d.metrics();
  EXPECT_EQ(m.sign_submitted(), futures.size());
  EXPECT_EQ(m.sign_completed(), futures.size());
  EXPECT_EQ(m.sign_batched(), futures.size());
  EXPECT_GE(m.sign_batches(), 1u);
  // Micro-batching must actually aggregate: strictly fewer engine calls
  // than requests (24 requests, batch cap 8, so at least some grouping).
  EXPECT_LT(m.sign_batches(), futures.size());
  EXPECT_GT(m.sign_occupancy(), 1.0);
  EXPECT_GT(m.p99_us, 0.0);
}

TEST(Dispatcher, ShutdownDrainsEveryAcceptedFuture) {
  DispatcherOptions opts = fast_options();
  opts.max_batch = 4;
  opts.max_linger_us = 50000;  // long linger: shutdown must cut through it
  Dispatcher d(registry(), opts);
  const std::uint64_t id = d.add_key(key_a());

  std::vector<std::future<falcon::Signature>> futures;
  for (int i = 0; i < 10; ++i) {
    auto sub = d.submit(serve::SignRequest{.key_id = id, .message = "drain " + std::to_string(i)});
    ASSERT_TRUE(sub.ok());
    futures.push_back(std::move(sub.future));
  }
  auto gauss = d.submit(serve::GaussRequest{.sigma = 25.0, .center = 0.0, .n = 1000});
  ASSERT_TRUE(gauss.ok());
  auto keygen = d.submit(serve::KeygenRequest{.params = falcon::FalconParams::for_degree(64), .seed = 808});
  ASSERT_TRUE(keygen.ok());
  const falcon::Signature presigned =
      d.signing_service().sign(key_a(), "drain 0");
  auto verify = d.submit(serve::VerifyRequest{.key_id = id, .message = "drain 0", .sig = presigned});
  ASSERT_TRUE(verify.ok());

  d.shutdown();

  // Everything accepted before shutdown resolves with a real result.
  const falcon::Verifier verifier(key_a().h, key_a().params);
  for (std::size_t i = 0; i < futures.size(); ++i)
    EXPECT_TRUE(
        verifier.verify("drain " + std::to_string(i), futures[i].get()));
  EXPECT_EQ(gauss.future.get().size(), 1000u);
  EXPECT_NE(keygen.future.get().key_id, 0u);
  EXPECT_TRUE(verify.future.get());

  // After shutdown: typed rejection, no future.
  auto late = d.submit(serve::SignRequest{.key_id = id, .message = "too late"});
  EXPECT_EQ(late.status, SubmitStatus::kShutdown);
  EXPECT_FALSE(late.future.valid());
  EXPECT_EQ(late.retry_after_ms, 0u);  // retrying a dead server is pointless
  auto late_gauss = d.submit(serve::GaussRequest{.sigma = 25.0, .center = 0.0, .n = 10});
  EXPECT_EQ(late_gauss.status, SubmitStatus::kShutdown);
  auto late_verify = d.submit(serve::VerifyRequest{.key_id = id, .message = "too late", .sig = presigned});
  EXPECT_EQ(late_verify.status, SubmitStatus::kShutdown);
  auto late_keygen = d.submit(serve::KeygenRequest{.params = falcon::FalconParams::for_degree(64), .seed = 1});
  EXPECT_EQ(late_keygen.status, SubmitStatus::kShutdown);

  const MetricsSnapshot m = d.metrics();
  EXPECT_EQ(m.sign_completed(), 10u);
  EXPECT_EQ(m.sign_rejected(), 1u);
}

TEST(Dispatcher, MultiKeyShardIsolation) {
  DispatcherOptions opts = fast_options();
  opts.max_batch = 6;
  opts.max_linger_us = 2000;
  opts.sign_lanes = 2;
  Dispatcher d(registry(), opts);
  const std::uint64_t id_a = d.add_key(key_a());
  const std::uint64_t id_b = d.add_key(key_b());
  ASSERT_NE(id_a, id_b);
  // add_key is idempotent for identical key material.
  EXPECT_EQ(d.add_key(key_a()), id_a);

  std::vector<std::future<falcon::Signature>> fa, fb;
  for (int i = 0; i < 8; ++i) {
    auto sa = d.submit(serve::SignRequest{.key_id = id_a, .message = "tenant A #" + std::to_string(i)});
    auto sb = d.submit(serve::SignRequest{.key_id = id_b, .message = "tenant B #" + std::to_string(i)});
    ASSERT_TRUE(sa.ok() && sb.ok());
    fa.push_back(std::move(sa.future));
    fb.push_back(std::move(sb.future));
  }

  // Each tenant's signatures verify under its own key and are rejected
  // under the other tenant's key: interleaved batches never leak a tree.
  const falcon::Verifier va(key_a().h, key_a().params);
  const falcon::Verifier vb(key_b().h, key_b().params);
  for (int i = 0; i < 8; ++i) {
    const auto sig_a = fa[static_cast<std::size_t>(i)].get();
    const auto sig_b = fb[static_cast<std::size_t>(i)].get();
    const std::string ma = "tenant A #" + std::to_string(i);
    const std::string mb = "tenant B #" + std::to_string(i);
    EXPECT_TRUE(va.verify(ma, sig_a));
    EXPECT_TRUE(vb.verify(mb, sig_b));
    EXPECT_FALSE(vb.verify(ma, sig_a));
    EXPECT_FALSE(va.verify(mb, sig_b));
  }
  // Both trees cached inside the one shared signing service.
  EXPECT_EQ(d.signing_service().num_cached_trees(), 2u);

  // Unregistered key id is a caller bug, reported loudly.
  EXPECT_THROW((void)d.submit(serve::SignRequest{.key_id = id_a ^ id_b ^ 1, .message = "nobody"}), Error);
}

TEST(Dispatcher, GaussRequestsBatchPerTargetAndSliceCorrectly) {
  DispatcherOptions opts = fast_options();
  opts.max_batch = 8;
  opts.max_linger_us = 20000;
  Dispatcher d(registry(), opts);

  // Several concurrent requests against the same target should collapse
  // into few bulk sample() calls and come back with the right sizes.
  std::vector<std::future<std::vector<std::int32_t>>> futures;
  std::vector<std::size_t> sizes = {100, 1, 77, 1024, 3, 500};
  for (std::size_t n : sizes) {
    auto sub = d.submit(serve::GaussRequest{.sigma = 30.0, .center = -1.25, .n = n});
    ASSERT_TRUE(sub.ok());
    futures.push_back(std::move(sub.future));
  }
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto samples = futures[i].get();
    ASSERT_EQ(samples.size(), sizes[i]);
  }
  // One stream materialized for the one distinct target.
  EXPECT_EQ(d.gaussian_service().num_streams(), 1u);

  const MetricsSnapshot m = d.metrics();
  std::uint64_t gauss_completed = 0, gauss_batches = 0;
  for (const auto& lane : m.gauss_lanes) {
    gauss_completed += lane.completed;
    gauss_batches += lane.batches;
  }
  EXPECT_EQ(gauss_completed, sizes.size());
  EXPECT_LE(gauss_batches, sizes.size());
}

TEST(Dispatcher, VerifyLaneBatchesVerdictsPerKey) {
  DispatcherOptions opts = fast_options();
  opts.max_batch = 8;
  opts.verify_lanes = 2;
  Dispatcher d(registry(), opts);
  const std::uint64_t id_a = d.add_key(key_a());
  const std::uint64_t id_b = d.add_key(key_b());

  // Material to judge: signatures from both tenants.
  std::vector<std::string> msgs_a, msgs_b;
  std::vector<falcon::Signature> sigs_a, sigs_b;
  for (int i = 0; i < 4; ++i) {
    msgs_a.push_back("verdict A #" + std::to_string(i));
    msgs_b.push_back("verdict B #" + std::to_string(i));
    auto sa = d.submit(serve::SignRequest{.key_id = id_a, .message = msgs_a.back()});
    auto sb = d.submit(serve::SignRequest{.key_id = id_b, .message = msgs_b.back()});
    ASSERT_TRUE(sa.ok() && sb.ok());
    sigs_a.push_back(sa.future.get());
    sigs_b.push_back(sb.future.get());
  }

  // One mixed burst: genuine, tampered, and cross-key (a valid signature
  // under the *other* tenant's key must be a clean rejection, not an
  // error) — futures collected first so the lane can batch.
  std::vector<std::future<bool>> expect_true, expect_false;
  for (int i = 0; i < 4; ++i) {
    auto good_a = d.submit(serve::VerifyRequest{.key_id = id_a, .message = msgs_a[static_cast<std::size_t>(i)], .sig = sigs_a[static_cast<std::size_t>(i)]});
    auto good_b = d.submit(serve::VerifyRequest{.key_id = id_b, .message = msgs_b[static_cast<std::size_t>(i)], .sig = sigs_b[static_cast<std::size_t>(i)]});
    falcon::Signature bent = sigs_a[static_cast<std::size_t>(i)];
    bent.s1[static_cast<std::size_t>(i)] += 1;
    auto tampered =
        d.submit(serve::VerifyRequest{.key_id = id_a, .message = msgs_a[static_cast<std::size_t>(i)], .sig = bent});
    auto cross = d.submit(serve::VerifyRequest{.key_id = id_b, .message = msgs_a[static_cast<std::size_t>(i)], .sig = sigs_a[static_cast<std::size_t>(i)]});
    ASSERT_TRUE(good_a.ok() && good_b.ok() && tampered.ok() && cross.ok());
    expect_true.push_back(std::move(good_a.future));
    expect_true.push_back(std::move(good_b.future));
    expect_false.push_back(std::move(tampered.future));
    expect_false.push_back(std::move(cross.future));
  }
  for (auto& f : expect_true) EXPECT_TRUE(f.get());
  for (auto& f : expect_false) EXPECT_FALSE(f.get());

  const MetricsSnapshot m = d.metrics();
  EXPECT_EQ(m.verify_completed(), 16u);
  EXPECT_EQ(m.verify_failed(), 0u);  // a "reject" verdict is a success
  EXPECT_EQ(d.verification_service().num_cached_keys(), 2u);

  // Unregistered key id is a caller bug, reported loudly.
  EXPECT_THROW((void)d.submit(serve::VerifyRequest{.key_id = id_a ^ id_b ^ 1, .message = "x", .sig = sigs_a[0]}), Error);
}

TEST(Dispatcher, KeygenLaneOnboardsTenantsDeterministically) {
  DispatcherOptions opts = fast_options();
  Dispatcher d(registry(), opts);

  auto kg1 = d.submit(serve::KeygenRequest{.params = falcon::FalconParams::for_degree(64), .seed = 4242});
  auto kg2 = d.submit(serve::KeygenRequest{.params = falcon::FalconParams::for_degree(64), .seed = 4243});
  ASSERT_TRUE(kg1.ok() && kg2.ok());
  const KeygenResult r1 = kg1.future.get();
  const KeygenResult r2 = kg2.future.get();
  EXPECT_NE(r1.key_id, r2.key_id);  // distinct seeds, distinct tenants
  EXPECT_EQ(r1.public_h.size(), 64u);
  ASSERT_NE(d.key(r1.key_id), nullptr);  // registered and ready to serve

  // Same seed replays the same key; add_key idempotence folds them.
  auto kg3 = d.submit(serve::KeygenRequest{.params = falcon::FalconParams::for_degree(64), .seed = 4242});
  ASSERT_TRUE(kg3.ok());
  EXPECT_EQ(kg3.future.get().key_id, r1.key_id);

  // The fresh tenant is immediately usable for the whole lifecycle.
  auto sub = d.submit(serve::SignRequest{.key_id = r1.key_id, .message = "fresh tenant message"});
  ASSERT_TRUE(sub.ok());
  const falcon::Signature sig = sub.future.get();
  auto verdict = d.submit(serve::VerifyRequest{.key_id = r1.key_id, .message = "fresh tenant message", .sig = sig});
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict.future.get());
  // And the wire-facing public key verifies it too.
  const falcon::Verifier verifier(r1.public_h, r1.params);
  EXPECT_TRUE(verifier.verify("fresh tenant message", sig));

  const MetricsSnapshot m = d.metrics();
  EXPECT_EQ(m.keygen_completed(), 3u);
  EXPECT_EQ(m.keygen_failed(), 0u);
  ASSERT_EQ(m.keygen_lanes.size(), 1u);  // always exactly one: isolation
}

TEST(Dispatcher, ExpiredDeadlineDropsTypedAtBatchClose) {
  DispatcherOptions opts = fast_options();
  opts.sign_lanes = 1;
  opts.max_linger_us = 20000;  // the 1us budget is long gone by close
  Dispatcher d(registry(), opts);
  const std::uint64_t id = d.add_key(key_a());

  auto doomed = d.submit(serve::SignRequest{
      .key_id = id, .message = "doomed", .deadline_us = 1});
  auto fine = d.submit(serve::SignRequest{.key_id = id, .message = "fine"});
  ASSERT_TRUE(doomed.ok() && fine.ok());
  // The expired request fails TYPED — never silently, never run late.
  EXPECT_THROW((void)doomed.future.get(), DeadlineExpired);
  const falcon::Verifier verifier(key_a().h, key_a().params);
  EXPECT_TRUE(verifier.verify("fine", fine.future.get()));

  const MetricsSnapshot m = d.metrics();
  EXPECT_EQ(m.sign_expired(), 1u);
  EXPECT_EQ(m.sign_completed(), 1u);
  EXPECT_EQ(m.priority_inversions(), 0u);
}

TEST(Dispatcher, TenantCapShedsStormerWhileVictimAdmits) {
  DispatcherOptions opts = fast_options();
  opts.sign_lanes = 1;        // both tenants on the one lane
  opts.tenant_capacity = 2;   // a tiny per-tenant depth cap
  opts.max_batch = 4;
  opts.max_linger_us = 50000;
  Dispatcher d(registry(), opts);
  const std::uint64_t id_a = d.add_key(key_a());
  const std::uint64_t id_b = d.add_key(key_b());

  // Storm tenant A until its own cap sheds it. The shed is typed
  // kTenantFull (not kQueueFull — the queue is nowhere near capacity)
  // and carries a nonzero drain-time retry hint.
  std::vector<std::future<falcon::Signature>> accepted;
  Submission<falcon::Signature> shed;
  for (int i = 0; i < 1000; ++i) {
    auto sub = d.submit(serve::SignRequest{.key_id = id_a, .message = "storm"});
    if (!sub.ok()) {
      shed = std::move(sub);
      break;
    }
    accepted.push_back(std::move(sub.future));
  }
  ASSERT_EQ(shed.status, SubmitStatus::kTenantFull);
  EXPECT_GE(shed.retry_after_ms, 1u);
  EXPECT_FALSE(shed.future.valid());

  // The victim tenant admits at the very same instant the stormer sheds.
  auto victim = d.submit(serve::SignRequest{.key_id = id_b, .message = "victim"});
  ASSERT_TRUE(victim.ok());
  const falcon::Verifier vb(key_b().h, key_b().params);
  EXPECT_TRUE(vb.verify("victim", victim.future.get()));
  const falcon::Verifier va(key_a().h, key_a().params);
  for (auto& f : accepted) EXPECT_TRUE(va.verify("storm", f.get()));

  const MetricsSnapshot m = d.metrics();
  EXPECT_GE(m.tenant_rejections(), 1u);
  EXPECT_EQ(m.priority_inversions(), 0u);
}

TEST(Dispatcher, VerifySlicesOnCrewKeepVerdictOrder) {
  DispatcherOptions opts = fast_options();
  opts.verify_lanes = 1;
  opts.max_batch = 32;
  opts.max_linger_us = 30000;  // one batch gathers the whole burst
  opts.verify_steal_slice = 2;  // force crew slicing at this size
  opts.verify_steal_workers = 2;
  Dispatcher d(registry(), opts);
  const std::uint64_t id = d.add_key(key_a());

  std::vector<std::string> msgs;
  std::vector<falcon::Signature> sigs;
  for (int i = 0; i < 6; ++i) {
    msgs.push_back("slice #" + std::to_string(i));
    auto s = d.submit(serve::SignRequest{.key_id = id, .message = msgs.back()});
    ASSERT_TRUE(s.ok());
    sigs.push_back(s.future.get());
  }

  // One burst, alternating genuine and tampered: every verdict is
  // position-dependent, so a slice writing the wrong output region (or
  // tasks racing on shared state) flips an expectation deterministically.
  std::vector<std::future<bool>> futures;
  std::vector<bool> want;
  for (int i = 0; i < 12; ++i) {
    const std::size_t k = static_cast<std::size_t>(i % 6);
    falcon::Signature sig = sigs[k];
    const bool good = (i % 2) == 0;
    if (!good) sig.s1[0] += 1;
    auto sub = d.submit(
        serve::VerifyRequest{.key_id = id, .message = msgs[k], .sig = sig});
    ASSERT_TRUE(sub.ok());
    futures.push_back(std::move(sub.future));
    want.push_back(good);
  }
  for (std::size_t i = 0; i < futures.size(); ++i)
    EXPECT_EQ(futures[i].get(), want[i]) << i;
  EXPECT_EQ(d.metrics().verify_failed(), 0u);
}

// Concurrent batches on different keys overlap on disjoint worker subsets
// (the convoy fix): this is the raciest path in the service, so hammer it
// from several threads and let TSan judge the interleavings.
TEST(SigningServiceOverlap, ConcurrentBatchesOnTwoKeysAllVerify) {
  falcon::SigningOptions opts;
  opts.backend = engine::Backend::kBitsliced;
  opts.num_threads = 2;
  opts.precision = 64;
  opts.root_seed = 31337;
  falcon::SigningService svc(registry(), opts);

  const falcon::Verifier va(key_a().h, key_a().params);
  const falcon::Verifier vb(key_b().h, key_b().params);
  std::atomic<int> failures{0};
  const auto hammer = [&](const falcon::KeyPair& kp,
                          const falcon::Verifier& verifier,
                          const char* tag) {
    for (int round = 0; round < 3; ++round) {
      std::vector<std::string> storage;
      std::vector<std::string_view> msgs;
      for (int i = 0; i < 5; ++i)
        storage.push_back(std::string(tag) + std::to_string(round * 5 + i));
      for (const auto& s : storage) msgs.push_back(s);
      const auto sigs = svc.sign_many(kp, msgs);
      for (std::size_t i = 0; i < sigs.size(); ++i)
        if (!verifier.verify(msgs[i], sigs[i])) failures.fetch_add(1);
    }
  };
  std::thread ta(hammer, std::cref(key_a()), std::cref(va), "overlap A ");
  std::thread tb(hammer, std::cref(key_b()), std::cref(vb), "overlap B ");
  hammer(key_a(), va, "overlap main ");
  ta.join();
  tb.join();
  EXPECT_EQ(failures.load(), 0);
  // Counters reconcile once everything is checked back in.
  EXPECT_EQ(svc.base_calls(), svc.stats().base_samples);
}

// -------------------------------------------------------------- wire -----

TEST(Wire, SignRequestRoundTrip) {
  SignRequestFrame req;
  req.request_id = 0x1122334455667788ull;
  req.key_id = 0xdeadbeefcafef00dull;
  req.message = "sign me, please \x01\x02";
  const auto encoded = encode(req);
  // Strip the u32 length prefix; the rest is a serial frame.
  ASSERT_GT(encoded.size(), 4u);
  const std::uint32_t len = encoded[0] | (encoded[1] << 8) |
                            (encoded[2] << 16) |
                            (std::uint32_t{encoded[3]} << 24);
  ASSERT_EQ(len, encoded.size() - 4);
  const auto decoded = decode_sign_request(
      std::span(encoded).subspan(4));
  EXPECT_EQ(decoded.request_id, req.request_id);
  EXPECT_EQ(decoded.key_id, req.key_id);
  EXPECT_EQ(decoded.message, req.message);
}

TEST(Wire, SignResponseRoundTripThroughSignature) {
  // A real signature (so compress/decompress is exercised end to end).
  DispatcherOptions opts = fast_options();
  Dispatcher d(registry(), opts);
  const std::uint64_t id = d.add_key(key_a());
  auto sub = d.submit(serve::SignRequest{.key_id = id, .message = "wire me"});
  ASSERT_TRUE(sub.ok());
  const falcon::Signature sig = sub.future.get();

  const auto resp = SignResponseFrame::success(42, sig);
  const auto encoded = encode(resp);
  const auto decoded = decode_sign_response(std::span(encoded).subspan(4));
  EXPECT_EQ(decoded.request_id, 42u);
  ASSERT_TRUE(decoded.ok);
  const falcon::Signature back = decoded.to_signature();
  EXPECT_EQ(back.nonce, sig.nonce);
  EXPECT_EQ(back.s1, sig.s1);
  const falcon::Verifier verifier(key_a().h, key_a().params);
  EXPECT_TRUE(verifier.verify("wire me", back));

  const auto err = SignResponseFrame::failure(43, "queue-full");
  const auto err_encoded = encode(err);
  const auto err_decoded =
      decode_sign_response(std::span(err_encoded).subspan(4));
  EXPECT_EQ(err_decoded.request_id, 43u);
  EXPECT_FALSE(err_decoded.ok);
  EXPECT_EQ(err_decoded.error, "queue-full");
  EXPECT_THROW((void)err_decoded.to_signature(), serial::SerialError);
}

TEST(Wire, VerifyFramesRoundTrip) {
  DispatcherOptions opts = fast_options();
  Dispatcher d(registry(), opts);
  const std::uint64_t id = d.add_key(key_a());
  auto sub = d.submit(serve::SignRequest{.key_id = id, .message = "verify wire"});
  ASSERT_TRUE(sub.ok());
  const falcon::Signature sig = sub.future.get();

  const auto req = VerifyRequestFrame::make(77, id, "verify wire", sig);
  const auto encoded = encode(req);
  EXPECT_EQ(serial::peek_tag(std::span(encoded).subspan(4)),
            serial::TypeTag::kVerifyRequest);
  const auto decoded = decode_verify_request(std::span(encoded).subspan(4));
  EXPECT_EQ(decoded.request_id, 77u);
  EXPECT_EQ(decoded.key_id, id);
  EXPECT_EQ(decoded.message, "verify wire");
  const falcon::Signature back = decoded.to_signature();
  EXPECT_EQ(back.nonce, sig.nonce);
  EXPECT_EQ(back.s1, sig.s1);

  for (const bool accepted : {true, false}) {
    const auto bytes = encode(VerifyResponseFrame::verdict(78, accepted));
    const auto r = decode_verify_response(std::span(bytes).subspan(4));
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.accepted, accepted);
  }
  const auto err_bytes = encode(VerifyResponseFrame::failure(79, "queue-full"));
  const auto err = decode_verify_response(std::span(err_bytes).subspan(4));
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.error, "queue-full");
}

TEST(Wire, KeygenFramesRoundTrip) {
  KeygenRequestFrame req;
  req.request_id = 5;
  req.degree = 128;
  req.seed = 0xfeed5eed;
  const auto encoded = encode(req);
  EXPECT_EQ(serial::peek_tag(std::span(encoded).subspan(4)),
            serial::TypeTag::kKeygenRequest);
  const auto decoded = decode_keygen_request(std::span(encoded).subspan(4));
  EXPECT_EQ(decoded.request_id, 5u);
  EXPECT_EQ(decoded.degree, 128u);
  EXPECT_EQ(decoded.seed, 0xfeed5eedu);

  const auto ok_bytes = encode(
      KeygenResponseFrame::success(6, 0x1234, key_a().h, key_a().params.n));
  const auto r = decode_keygen_response(std::span(ok_bytes).subspan(4));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.key_id, 0x1234u);
  EXPECT_EQ(r.degree, key_a().params.n);
  EXPECT_EQ(r.h, key_a().h);  // u16 coding is lossless below q

  const auto err_bytes = encode(KeygenResponseFrame::failure(7, "solver died"));
  const auto err = decode_keygen_response(std::span(err_bytes).subspan(4));
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.error, "solver died");
}

TEST(Wire, RequestContextVersionsRoundTripAndStayByteCompatible) {
  // No context at all: byte-identical to the pre-context wire format.
  SignRequestFrame plain;
  plain.request_id = 9;
  plain.key_id = 10;
  plain.message = "ctx";
  const auto plain_bytes = encode(plain);

  SignRequestFrame traced = plain;
  traced.trace_id = 0x7ace1dull;
  const auto traced_bytes = encode(traced);
  // v1 block: one u8 + one u64 beyond the bare frame.
  EXPECT_EQ(traced_bytes.size(), plain_bytes.size() + 9);
  const auto traced_back =
      decode_sign_request(std::span(traced_bytes).subspan(4));
  EXPECT_EQ(traced_back.trace_id, 0x7ace1dull);
  EXPECT_EQ(traced_back.deadline_us, 0u);

  // A deadline upgrades the block to v2 (trace id rides along even at 0).
  SignRequestFrame dl = plain;
  dl.deadline_us = 1500;
  const auto dl_bytes = encode(dl);
  EXPECT_EQ(dl_bytes.size(), plain_bytes.size() + 17);
  const auto dl_back = decode_sign_request(std::span(dl_bytes).subspan(4));
  EXPECT_EQ(dl_back.trace_id, 0u);
  EXPECT_EQ(dl_back.deadline_us, 1500u);

  // Both set: still one v2 block; both fields survive on every request
  // frame kind that carries the context.
  VerifyRequestFrame vreq;
  vreq.request_id = 11;
  vreq.key_id = 10;
  vreq.message = "ctx";
  vreq.degree = 64;
  vreq.trace_id = 5;
  vreq.deadline_us = 77;
  const auto v_bytes = encode(vreq);
  const auto v_back = decode_verify_request(std::span(v_bytes).subspan(4));
  EXPECT_EQ(v_back.trace_id, 5u);
  EXPECT_EQ(v_back.deadline_us, 77u);

  KeygenRequestFrame kreq;
  kreq.request_id = 12;
  kreq.degree = 64;
  kreq.seed = 3;
  kreq.deadline_us = 250'000;
  const auto k_bytes = encode(kreq);
  const auto k_back = decode_keygen_request(std::span(k_bytes).subspan(4));
  EXPECT_EQ(k_back.deadline_us, 250'000u);

  // An unknown ctx version is a malformed frame, not a silent skip.
  auto bad = plain_bytes;
  // Rebuild by hand is overkill: a v1 block whose version byte is bumped
  // must reject. Corrupting the encoded version byte would break the
  // checksum first, which is also a rejection — either way it throws.
  bad = traced_bytes;
  bad[bad.size() - 9] = 3;  // the ctx version byte of the v1 block
  EXPECT_THROW((void)decode_sign_request(std::span(bad).subspan(4)),
               serial::SerialError);
}

TEST(Wire, CorruptionAndForeignFramesAreRejected) {
  SignRequestFrame req;
  req.request_id = 7;
  req.key_id = 8;
  req.message = "tamper target";
  auto encoded = encode(req);
  // Flip one payload byte: the frame checksum must catch it.
  encoded.back() ^= 0x40;
  EXPECT_THROW((void)decode_sign_request(std::span(encoded).subspan(4)),
               serial::SerialError);
  // A request frame is not a response frame (tag mismatch).
  const auto intact = encode(req);
  EXPECT_THROW((void)decode_sign_response(std::span(intact).subspan(4)),
               serial::SerialError);
}

TEST(Wire, StreamMessagesOverAPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  SignRequestFrame req;
  req.request_id = 1;
  req.key_id = 2;
  req.message = "over the pipe";
  ASSERT_TRUE(write_message(fds[1], encode(req)));
  SignRequestFrame req2 = req;
  req2.request_id = 2;
  ASSERT_TRUE(write_message(fds[1], encode(req2)));
  ::close(fds[1]);

  auto m1 = read_message(fds[0]);
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(decode_sign_request(*m1).request_id, 1u);
  auto m2 = read_message(fds[0]);
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(decode_sign_request(*m2).message, "over the pipe");
  EXPECT_FALSE(read_message(fds[0]).has_value());  // clean EOF
  ::close(fds[0]);

  // A torn message (EOF mid-body) is corruption, not EOF.
  ASSERT_EQ(pipe(fds), 0);
  const auto bytes = encode(req);
  ASSERT_TRUE(write_message(
      fds[1], std::span(bytes).subspan(0, bytes.size() - 3)));
  ::close(fds[1]);
  EXPECT_THROW((void)read_message(fds[0]), serial::SerialError);
  ::close(fds[0]);
}

}  // namespace
}  // namespace cgs::serve
