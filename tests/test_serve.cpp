// The async serving layer: queue backpressure, micro-batch close policy
// (full batch vs linger), dispatcher shutdown-drain semantics, multi-key
// shard isolation, concurrent-batch overlap through the signing service,
// metrics accounting, and the length-prefixed wire frames.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "engine/registry.h"
#include "falcon/verify.h"
#include "prng/chacha20.h"
#include "serial/serial.h"
#include "serve/batcher.h"
#include "serve/dispatcher.h"
#include "serve/metrics.h"
#include "serve/queue.h"
#include "serve/wire.h"

namespace cgs::serve {
namespace {

using Clock = std::chrono::steady_clock;

engine::SamplerRegistry& registry() {
  // In-process memo only: these tests must not depend on (or pollute) the
  // user's on-disk cache state.
  static engine::SamplerRegistry reg({.cache_dir = "", .use_disk = false});
  return reg;
}

const falcon::KeyPair& key_a() {
  static const falcon::KeyPair kp = [] {
    prng::ChaCha20Source rng(4242);
    return falcon::keygen(falcon::FalconParams::for_degree(64), rng);
  }();
  return kp;
}

const falcon::KeyPair& key_b() {
  static const falcon::KeyPair kp = [] {
    prng::ChaCha20Source rng(999);
    return falcon::keygen(falcon::FalconParams::for_degree(64), rng);
  }();
  return kp;
}

DispatcherOptions fast_options() {
  DispatcherOptions opts;
  opts.signing.backend = engine::Backend::kBitsliced;
  opts.signing.num_threads = 2;
  opts.signing.precision = 64;
  opts.signing.root_seed = 7;
  opts.gaussian.backend = engine::Backend::kBitsliced;
  opts.gaussian.num_threads = 1;
  opts.gaussian.root_seed = 7;
  return opts;
}

// ------------------------------------------------------------- queue -----

TEST(RequestQueue, BackpressureRejectsWhenFullAndAfterClose) {
  RequestQueue<int> q(2);
  EXPECT_EQ(q.try_push(1), SubmitStatus::kOk);
  EXPECT_EQ(q.try_push(2), SubmitStatus::kOk);
  EXPECT_EQ(q.try_push(3), SubmitStatus::kQueueFull);
  EXPECT_EQ(q.size(), 2u);

  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_EQ(q.try_push(4), SubmitStatus::kOk);  // capacity freed

  q.close();
  EXPECT_EQ(q.try_push(5), SubmitStatus::kShutdown);
  // Items accepted before close still drain, in order.
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 4);
  EXPECT_FALSE(q.pop(out));  // closed and drained
}

TEST(RequestQueue, PopUntilTimesOutOnEmpty) {
  RequestQueue<int> q(1);
  int out = 0;
  const auto t0 = Clock::now();
  EXPECT_FALSE(
      q.pop_until(out, t0 + std::chrono::milliseconds(30)));
  EXPECT_GE(Clock::now() - t0, std::chrono::milliseconds(25));
}

// ----------------------------------------------------------- batcher -----

TEST(MicroBatcher, FullBatchClosesWithoutWaitingForLinger) {
  RequestQueue<int> q(16);
  // Linger far beyond any sane test runtime: if the batcher waited for it
  // on a full batch, this test would time out rather than pass slowly.
  MicroBatcher<int> batcher(q, 4, std::chrono::seconds(600));
  for (int i = 0; i < 7; ++i) ASSERT_EQ(q.try_push(int(i)), SubmitStatus::kOk);

  std::vector<int> batch;
  const auto t0 = Clock::now();
  ASSERT_TRUE(batcher.next_batch(batch));
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(10));
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));  // closed on max_batch
  q.close();  // otherwise the partial leftovers batch would sit out the
              // (deliberately absurd) linger
  ASSERT_TRUE(batcher.next_batch(batch));
  EXPECT_EQ(batch, (std::vector<int>{4, 5, 6}));
}

TEST(MicroBatcher, LingerClosesPartialBatch) {
  RequestQueue<int> q(16);
  MicroBatcher<int> batcher(q, 64, std::chrono::milliseconds(40));
  ASSERT_EQ(q.try_push(11), SubmitStatus::kOk);
  std::vector<int> batch;
  const auto t0 = Clock::now();
  ASSERT_TRUE(batcher.next_batch(batch));
  const auto waited = Clock::now() - t0;
  EXPECT_EQ(batch, std::vector<int>{11});
  // Closed by the linger deadline: waited roughly max_linger, nowhere near
  // "forever for 63 more requests".
  EXPECT_GE(waited, std::chrono::milliseconds(35));
  EXPECT_LT(waited, std::chrono::seconds(30));
}

// The leftovers batch above closes by linger too (queue empty): document
// that a closed queue ends the loop instead.
TEST(MicroBatcher, ClosedAndDrainedEndsTheLoop) {
  RequestQueue<int> q(4);
  MicroBatcher<int> batcher(q, 2, std::chrono::milliseconds(5));
  ASSERT_EQ(q.try_push(1), SubmitStatus::kOk);
  q.close();
  std::vector<int> batch;
  ASSERT_TRUE(batcher.next_batch(batch));  // drains the accepted item
  EXPECT_EQ(batch, std::vector<int>{1});
  EXPECT_FALSE(batcher.next_batch(batch));  // loop exit
  EXPECT_TRUE(batch.empty());
}

// --------------------------------------------------------- histogram -----

TEST(LatencyHistogram, QuantilesAreOrderedAndBucketed) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(100);   // bucket [64, 128)
  for (int i = 0; i < 9; ++i) h.record(1000);   // bucket [512, 1024)
  h.record(100000);                             // bucket [65536, 131072)
  EXPECT_EQ(h.count(), 100u);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_EQ(p50, 128.0);     // upper bound of the 100us bucket
  EXPECT_EQ(p95, 1024.0);    // the 1000us bucket
  EXPECT_EQ(p99, 1024.0);    // nearest-rank: the 99th of 100 obs
  EXPECT_EQ(h.quantile(0.0), 128.0);
  EXPECT_EQ(h.quantile(1.0), 131072.0);  // the outlier bucket
}

// -------------------------------------------------------- dispatcher -----

TEST(Dispatcher, ServesConcurrentClientsAndFillsBatches) {
  DispatcherOptions opts = fast_options();
  opts.max_batch = 8;
  opts.max_linger_us = 3000;
  opts.sign_lanes = 2;
  Dispatcher d(registry(), opts);
  const std::uint64_t id = d.add_key(key_a());

  constexpr int kClients = 4, kPerClient = 6;
  std::vector<std::future<falcon::Signature>> futures(
      static_cast<std::size_t>(kClients * kPerClient));
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int slot = c * kPerClient + i;
        while (true) {
          auto sub = d.submit(serve::SignRequest{.key_id = id, .message = "msg " + std::to_string(slot)});
          if (sub.ok()) {
            futures[static_cast<std::size_t>(slot)] = std::move(sub.future);
            break;
          }
          ASSERT_EQ(sub.status, SubmitStatus::kQueueFull);
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  const falcon::Verifier verifier(key_a().h, key_a().params);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const falcon::Signature sig = futures[i].get();
    EXPECT_TRUE(verifier.verify("msg " + std::to_string(i), sig)) << i;
  }

  const MetricsSnapshot m = d.metrics();
  EXPECT_EQ(m.sign_submitted(), futures.size());
  EXPECT_EQ(m.sign_completed(), futures.size());
  EXPECT_EQ(m.sign_batched(), futures.size());
  EXPECT_GE(m.sign_batches(), 1u);
  // Micro-batching must actually aggregate: strictly fewer engine calls
  // than requests (24 requests, batch cap 8, so at least some grouping).
  EXPECT_LT(m.sign_batches(), futures.size());
  EXPECT_GT(m.sign_occupancy(), 1.0);
  EXPECT_GT(m.p99_us, 0.0);
}

TEST(Dispatcher, ShutdownDrainsEveryAcceptedFuture) {
  DispatcherOptions opts = fast_options();
  opts.max_batch = 4;
  opts.max_linger_us = 50000;  // long linger: shutdown must cut through it
  Dispatcher d(registry(), opts);
  const std::uint64_t id = d.add_key(key_a());

  std::vector<std::future<falcon::Signature>> futures;
  for (int i = 0; i < 10; ++i) {
    auto sub = d.submit(serve::SignRequest{.key_id = id, .message = "drain " + std::to_string(i)});
    ASSERT_TRUE(sub.ok());
    futures.push_back(std::move(sub.future));
  }
  auto gauss = d.submit(serve::GaussRequest{.sigma = 25.0, .center = 0.0, .n = 1000});
  ASSERT_TRUE(gauss.ok());
  auto keygen = d.submit(serve::KeygenRequest{.params = falcon::FalconParams::for_degree(64), .seed = 808});
  ASSERT_TRUE(keygen.ok());
  const falcon::Signature presigned =
      d.signing_service().sign(key_a(), "drain 0");
  auto verify = d.submit(serve::VerifyRequest{.key_id = id, .message = "drain 0", .sig = presigned});
  ASSERT_TRUE(verify.ok());

  d.shutdown();

  // Everything accepted before shutdown resolves with a real result.
  const falcon::Verifier verifier(key_a().h, key_a().params);
  for (std::size_t i = 0; i < futures.size(); ++i)
    EXPECT_TRUE(
        verifier.verify("drain " + std::to_string(i), futures[i].get()));
  EXPECT_EQ(gauss.future.get().size(), 1000u);
  EXPECT_NE(keygen.future.get().key_id, 0u);
  EXPECT_TRUE(verify.future.get());

  // After shutdown: typed rejection, no future.
  auto late = d.submit(serve::SignRequest{.key_id = id, .message = "too late"});
  EXPECT_EQ(late.status, SubmitStatus::kShutdown);
  EXPECT_FALSE(late.future.valid());
  auto late_gauss = d.submit(serve::GaussRequest{.sigma = 25.0, .center = 0.0, .n = 10});
  EXPECT_EQ(late_gauss.status, SubmitStatus::kShutdown);
  auto late_verify = d.submit(serve::VerifyRequest{.key_id = id, .message = "too late", .sig = presigned});
  EXPECT_EQ(late_verify.status, SubmitStatus::kShutdown);
  auto late_keygen = d.submit(serve::KeygenRequest{.params = falcon::FalconParams::for_degree(64), .seed = 1});
  EXPECT_EQ(late_keygen.status, SubmitStatus::kShutdown);

  const MetricsSnapshot m = d.metrics();
  EXPECT_EQ(m.sign_completed(), 10u);
  EXPECT_EQ(m.sign_rejected(), 1u);
}

TEST(Dispatcher, MultiKeyShardIsolation) {
  DispatcherOptions opts = fast_options();
  opts.max_batch = 6;
  opts.max_linger_us = 2000;
  opts.sign_lanes = 2;
  Dispatcher d(registry(), opts);
  const std::uint64_t id_a = d.add_key(key_a());
  const std::uint64_t id_b = d.add_key(key_b());
  ASSERT_NE(id_a, id_b);
  // add_key is idempotent for identical key material.
  EXPECT_EQ(d.add_key(key_a()), id_a);

  std::vector<std::future<falcon::Signature>> fa, fb;
  for (int i = 0; i < 8; ++i) {
    auto sa = d.submit(serve::SignRequest{.key_id = id_a, .message = "tenant A #" + std::to_string(i)});
    auto sb = d.submit(serve::SignRequest{.key_id = id_b, .message = "tenant B #" + std::to_string(i)});
    ASSERT_TRUE(sa.ok() && sb.ok());
    fa.push_back(std::move(sa.future));
    fb.push_back(std::move(sb.future));
  }

  // Each tenant's signatures verify under its own key and are rejected
  // under the other tenant's key: interleaved batches never leak a tree.
  const falcon::Verifier va(key_a().h, key_a().params);
  const falcon::Verifier vb(key_b().h, key_b().params);
  for (int i = 0; i < 8; ++i) {
    const auto sig_a = fa[static_cast<std::size_t>(i)].get();
    const auto sig_b = fb[static_cast<std::size_t>(i)].get();
    const std::string ma = "tenant A #" + std::to_string(i);
    const std::string mb = "tenant B #" + std::to_string(i);
    EXPECT_TRUE(va.verify(ma, sig_a));
    EXPECT_TRUE(vb.verify(mb, sig_b));
    EXPECT_FALSE(vb.verify(ma, sig_a));
    EXPECT_FALSE(va.verify(mb, sig_b));
  }
  // Both trees cached inside the one shared signing service.
  EXPECT_EQ(d.signing_service().num_cached_trees(), 2u);

  // Unregistered key id is a caller bug, reported loudly.
  EXPECT_THROW((void)d.submit(serve::SignRequest{.key_id = id_a ^ id_b ^ 1, .message = "nobody"}), Error);
}

TEST(Dispatcher, GaussRequestsBatchPerTargetAndSliceCorrectly) {
  DispatcherOptions opts = fast_options();
  opts.max_batch = 8;
  opts.max_linger_us = 20000;
  Dispatcher d(registry(), opts);

  // Several concurrent requests against the same target should collapse
  // into few bulk sample() calls and come back with the right sizes.
  std::vector<std::future<std::vector<std::int32_t>>> futures;
  std::vector<std::size_t> sizes = {100, 1, 77, 1024, 3, 500};
  for (std::size_t n : sizes) {
    auto sub = d.submit(serve::GaussRequest{.sigma = 30.0, .center = -1.25, .n = n});
    ASSERT_TRUE(sub.ok());
    futures.push_back(std::move(sub.future));
  }
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto samples = futures[i].get();
    ASSERT_EQ(samples.size(), sizes[i]);
  }
  // One stream materialized for the one distinct target.
  EXPECT_EQ(d.gaussian_service().num_streams(), 1u);

  const MetricsSnapshot m = d.metrics();
  std::uint64_t gauss_completed = 0, gauss_batches = 0;
  for (const auto& lane : m.gauss_lanes) {
    gauss_completed += lane.completed;
    gauss_batches += lane.batches;
  }
  EXPECT_EQ(gauss_completed, sizes.size());
  EXPECT_LE(gauss_batches, sizes.size());
}

TEST(Dispatcher, VerifyLaneBatchesVerdictsPerKey) {
  DispatcherOptions opts = fast_options();
  opts.max_batch = 8;
  opts.verify_lanes = 2;
  Dispatcher d(registry(), opts);
  const std::uint64_t id_a = d.add_key(key_a());
  const std::uint64_t id_b = d.add_key(key_b());

  // Material to judge: signatures from both tenants.
  std::vector<std::string> msgs_a, msgs_b;
  std::vector<falcon::Signature> sigs_a, sigs_b;
  for (int i = 0; i < 4; ++i) {
    msgs_a.push_back("verdict A #" + std::to_string(i));
    msgs_b.push_back("verdict B #" + std::to_string(i));
    auto sa = d.submit(serve::SignRequest{.key_id = id_a, .message = msgs_a.back()});
    auto sb = d.submit(serve::SignRequest{.key_id = id_b, .message = msgs_b.back()});
    ASSERT_TRUE(sa.ok() && sb.ok());
    sigs_a.push_back(sa.future.get());
    sigs_b.push_back(sb.future.get());
  }

  // One mixed burst: genuine, tampered, and cross-key (a valid signature
  // under the *other* tenant's key must be a clean rejection, not an
  // error) — futures collected first so the lane can batch.
  std::vector<std::future<bool>> expect_true, expect_false;
  for (int i = 0; i < 4; ++i) {
    auto good_a = d.submit(serve::VerifyRequest{.key_id = id_a, .message = msgs_a[static_cast<std::size_t>(i)], .sig = sigs_a[static_cast<std::size_t>(i)]});
    auto good_b = d.submit(serve::VerifyRequest{.key_id = id_b, .message = msgs_b[static_cast<std::size_t>(i)], .sig = sigs_b[static_cast<std::size_t>(i)]});
    falcon::Signature bent = sigs_a[static_cast<std::size_t>(i)];
    bent.s1[static_cast<std::size_t>(i)] += 1;
    auto tampered =
        d.submit(serve::VerifyRequest{.key_id = id_a, .message = msgs_a[static_cast<std::size_t>(i)], .sig = bent});
    auto cross = d.submit(serve::VerifyRequest{.key_id = id_b, .message = msgs_a[static_cast<std::size_t>(i)], .sig = sigs_a[static_cast<std::size_t>(i)]});
    ASSERT_TRUE(good_a.ok() && good_b.ok() && tampered.ok() && cross.ok());
    expect_true.push_back(std::move(good_a.future));
    expect_true.push_back(std::move(good_b.future));
    expect_false.push_back(std::move(tampered.future));
    expect_false.push_back(std::move(cross.future));
  }
  for (auto& f : expect_true) EXPECT_TRUE(f.get());
  for (auto& f : expect_false) EXPECT_FALSE(f.get());

  const MetricsSnapshot m = d.metrics();
  EXPECT_EQ(m.verify_completed(), 16u);
  EXPECT_EQ(m.verify_failed(), 0u);  // a "reject" verdict is a success
  EXPECT_EQ(d.verification_service().num_cached_keys(), 2u);

  // Unregistered key id is a caller bug, reported loudly.
  EXPECT_THROW((void)d.submit(serve::VerifyRequest{.key_id = id_a ^ id_b ^ 1, .message = "x", .sig = sigs_a[0]}), Error);
}

TEST(Dispatcher, KeygenLaneOnboardsTenantsDeterministically) {
  DispatcherOptions opts = fast_options();
  Dispatcher d(registry(), opts);

  auto kg1 = d.submit(serve::KeygenRequest{.params = falcon::FalconParams::for_degree(64), .seed = 4242});
  auto kg2 = d.submit(serve::KeygenRequest{.params = falcon::FalconParams::for_degree(64), .seed = 4243});
  ASSERT_TRUE(kg1.ok() && kg2.ok());
  const KeygenResult r1 = kg1.future.get();
  const KeygenResult r2 = kg2.future.get();
  EXPECT_NE(r1.key_id, r2.key_id);  // distinct seeds, distinct tenants
  EXPECT_EQ(r1.public_h.size(), 64u);
  ASSERT_NE(d.key(r1.key_id), nullptr);  // registered and ready to serve

  // Same seed replays the same key; add_key idempotence folds them.
  auto kg3 = d.submit(serve::KeygenRequest{.params = falcon::FalconParams::for_degree(64), .seed = 4242});
  ASSERT_TRUE(kg3.ok());
  EXPECT_EQ(kg3.future.get().key_id, r1.key_id);

  // The fresh tenant is immediately usable for the whole lifecycle.
  auto sub = d.submit(serve::SignRequest{.key_id = r1.key_id, .message = "fresh tenant message"});
  ASSERT_TRUE(sub.ok());
  const falcon::Signature sig = sub.future.get();
  auto verdict = d.submit(serve::VerifyRequest{.key_id = r1.key_id, .message = "fresh tenant message", .sig = sig});
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict.future.get());
  // And the wire-facing public key verifies it too.
  const falcon::Verifier verifier(r1.public_h, r1.params);
  EXPECT_TRUE(verifier.verify("fresh tenant message", sig));

  const MetricsSnapshot m = d.metrics();
  EXPECT_EQ(m.keygen_completed(), 3u);
  EXPECT_EQ(m.keygen_failed(), 0u);
  ASSERT_EQ(m.keygen_lanes.size(), 1u);  // always exactly one: isolation
}

// Concurrent batches on different keys overlap on disjoint worker subsets
// (the convoy fix): this is the raciest path in the service, so hammer it
// from several threads and let TSan judge the interleavings.
TEST(SigningServiceOverlap, ConcurrentBatchesOnTwoKeysAllVerify) {
  falcon::SigningOptions opts;
  opts.backend = engine::Backend::kBitsliced;
  opts.num_threads = 2;
  opts.precision = 64;
  opts.root_seed = 31337;
  falcon::SigningService svc(registry(), opts);

  const falcon::Verifier va(key_a().h, key_a().params);
  const falcon::Verifier vb(key_b().h, key_b().params);
  std::atomic<int> failures{0};
  const auto hammer = [&](const falcon::KeyPair& kp,
                          const falcon::Verifier& verifier,
                          const char* tag) {
    for (int round = 0; round < 3; ++round) {
      std::vector<std::string> storage;
      std::vector<std::string_view> msgs;
      for (int i = 0; i < 5; ++i)
        storage.push_back(std::string(tag) + std::to_string(round * 5 + i));
      for (const auto& s : storage) msgs.push_back(s);
      const auto sigs = svc.sign_many(kp, msgs);
      for (std::size_t i = 0; i < sigs.size(); ++i)
        if (!verifier.verify(msgs[i], sigs[i])) failures.fetch_add(1);
    }
  };
  std::thread ta(hammer, std::cref(key_a()), std::cref(va), "overlap A ");
  std::thread tb(hammer, std::cref(key_b()), std::cref(vb), "overlap B ");
  hammer(key_a(), va, "overlap main ");
  ta.join();
  tb.join();
  EXPECT_EQ(failures.load(), 0);
  // Counters reconcile once everything is checked back in.
  EXPECT_EQ(svc.base_calls(), svc.stats().base_samples);
}

// -------------------------------------------------------------- wire -----

TEST(Wire, SignRequestRoundTrip) {
  SignRequestFrame req;
  req.request_id = 0x1122334455667788ull;
  req.key_id = 0xdeadbeefcafef00dull;
  req.message = "sign me, please \x01\x02";
  const auto encoded = encode(req);
  // Strip the u32 length prefix; the rest is a serial frame.
  ASSERT_GT(encoded.size(), 4u);
  const std::uint32_t len = encoded[0] | (encoded[1] << 8) |
                            (encoded[2] << 16) |
                            (std::uint32_t{encoded[3]} << 24);
  ASSERT_EQ(len, encoded.size() - 4);
  const auto decoded = decode_sign_request(
      std::span(encoded).subspan(4));
  EXPECT_EQ(decoded.request_id, req.request_id);
  EXPECT_EQ(decoded.key_id, req.key_id);
  EXPECT_EQ(decoded.message, req.message);
}

TEST(Wire, SignResponseRoundTripThroughSignature) {
  // A real signature (so compress/decompress is exercised end to end).
  DispatcherOptions opts = fast_options();
  Dispatcher d(registry(), opts);
  const std::uint64_t id = d.add_key(key_a());
  auto sub = d.submit(serve::SignRequest{.key_id = id, .message = "wire me"});
  ASSERT_TRUE(sub.ok());
  const falcon::Signature sig = sub.future.get();

  const auto resp = SignResponseFrame::success(42, sig);
  const auto encoded = encode(resp);
  const auto decoded = decode_sign_response(std::span(encoded).subspan(4));
  EXPECT_EQ(decoded.request_id, 42u);
  ASSERT_TRUE(decoded.ok);
  const falcon::Signature back = decoded.to_signature();
  EXPECT_EQ(back.nonce, sig.nonce);
  EXPECT_EQ(back.s1, sig.s1);
  const falcon::Verifier verifier(key_a().h, key_a().params);
  EXPECT_TRUE(verifier.verify("wire me", back));

  const auto err = SignResponseFrame::failure(43, "queue-full");
  const auto err_encoded = encode(err);
  const auto err_decoded =
      decode_sign_response(std::span(err_encoded).subspan(4));
  EXPECT_EQ(err_decoded.request_id, 43u);
  EXPECT_FALSE(err_decoded.ok);
  EXPECT_EQ(err_decoded.error, "queue-full");
  EXPECT_THROW((void)err_decoded.to_signature(), serial::SerialError);
}

TEST(Wire, VerifyFramesRoundTrip) {
  DispatcherOptions opts = fast_options();
  Dispatcher d(registry(), opts);
  const std::uint64_t id = d.add_key(key_a());
  auto sub = d.submit(serve::SignRequest{.key_id = id, .message = "verify wire"});
  ASSERT_TRUE(sub.ok());
  const falcon::Signature sig = sub.future.get();

  const auto req = VerifyRequestFrame::make(77, id, "verify wire", sig);
  const auto encoded = encode(req);
  EXPECT_EQ(serial::peek_tag(std::span(encoded).subspan(4)),
            serial::TypeTag::kVerifyRequest);
  const auto decoded = decode_verify_request(std::span(encoded).subspan(4));
  EXPECT_EQ(decoded.request_id, 77u);
  EXPECT_EQ(decoded.key_id, id);
  EXPECT_EQ(decoded.message, "verify wire");
  const falcon::Signature back = decoded.to_signature();
  EXPECT_EQ(back.nonce, sig.nonce);
  EXPECT_EQ(back.s1, sig.s1);

  for (const bool accepted : {true, false}) {
    const auto bytes = encode(VerifyResponseFrame::verdict(78, accepted));
    const auto r = decode_verify_response(std::span(bytes).subspan(4));
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.accepted, accepted);
  }
  const auto err_bytes = encode(VerifyResponseFrame::failure(79, "queue-full"));
  const auto err = decode_verify_response(std::span(err_bytes).subspan(4));
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.error, "queue-full");
}

TEST(Wire, KeygenFramesRoundTrip) {
  KeygenRequestFrame req;
  req.request_id = 5;
  req.degree = 128;
  req.seed = 0xfeed5eed;
  const auto encoded = encode(req);
  EXPECT_EQ(serial::peek_tag(std::span(encoded).subspan(4)),
            serial::TypeTag::kKeygenRequest);
  const auto decoded = decode_keygen_request(std::span(encoded).subspan(4));
  EXPECT_EQ(decoded.request_id, 5u);
  EXPECT_EQ(decoded.degree, 128u);
  EXPECT_EQ(decoded.seed, 0xfeed5eedu);

  const auto ok_bytes = encode(
      KeygenResponseFrame::success(6, 0x1234, key_a().h, key_a().params.n));
  const auto r = decode_keygen_response(std::span(ok_bytes).subspan(4));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.key_id, 0x1234u);
  EXPECT_EQ(r.degree, key_a().params.n);
  EXPECT_EQ(r.h, key_a().h);  // u16 coding is lossless below q

  const auto err_bytes = encode(KeygenResponseFrame::failure(7, "solver died"));
  const auto err = decode_keygen_response(std::span(err_bytes).subspan(4));
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.error, "solver died");
}

TEST(Wire, CorruptionAndForeignFramesAreRejected) {
  SignRequestFrame req;
  req.request_id = 7;
  req.key_id = 8;
  req.message = "tamper target";
  auto encoded = encode(req);
  // Flip one payload byte: the frame checksum must catch it.
  encoded.back() ^= 0x40;
  EXPECT_THROW((void)decode_sign_request(std::span(encoded).subspan(4)),
               serial::SerialError);
  // A request frame is not a response frame (tag mismatch).
  const auto intact = encode(req);
  EXPECT_THROW((void)decode_sign_response(std::span(intact).subspan(4)),
               serial::SerialError);
}

TEST(Wire, StreamMessagesOverAPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  SignRequestFrame req;
  req.request_id = 1;
  req.key_id = 2;
  req.message = "over the pipe";
  ASSERT_TRUE(write_message(fds[1], encode(req)));
  SignRequestFrame req2 = req;
  req2.request_id = 2;
  ASSERT_TRUE(write_message(fds[1], encode(req2)));
  ::close(fds[1]);

  auto m1 = read_message(fds[0]);
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(decode_sign_request(*m1).request_id, 1u);
  auto m2 = read_message(fds[0]);
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(decode_sign_request(*m2).message, "over the pipe");
  EXPECT_FALSE(read_message(fds[0]).has_value());  // clean EOF
  ::close(fds[0]);

  // A torn message (EOF mid-body) is corruption, not EOF.
  ASSERT_EQ(pipe(fds), 0);
  const auto bytes = encode(req);
  ASSERT_TRUE(write_message(
      fds[1], std::span(bytes).subspan(0, bytes.size() - 3)));
  ::close(fds[1]);
  EXPECT_THROW((void)read_message(fds[0]), serial::SerialError);
  ::close(fds[0]);
}

}  // namespace
}  // namespace cgs::serve
