// Arbitrary-(sigma, c) service: recipe planning (smoothing-aware base/stride
// choice), canonical recipe cache keys, the registry's recipe cache
// hierarchy, GaussianService batch sampling determinism, and the chi-square
// + Renyi acceptance of a non-synthesized target.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <limits>

#include "ct/compiled_sampler.h"
#include "engine/registry.h"
#include "engine/service.h"
#include "serial/formats.h"
#include "serial/serial.h"
#include "stats/acceptance.h"

namespace cgs::engine {
namespace {

std::string fresh_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + "cgs-service-" + name + "-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

// One cache dir shared by the service tests in this process so the sigma_21
// base synthesizes once and warm-loads everywhere else.
const std::string& shared_dir() {
  static const std::string dir = fresh_dir("shared");
  return dir;
}

// ------------------------------------------------------------ recipe keys ---

TEST(RecipeKey, CanonicalAndFilenameSafe) {
  const std::string k = recipe_cache_key(271.4, 0.5);
  EXPECT_EQ(k, recipe_cache_key(271.4, 0.5));  // bit-identical inputs alias
  EXPECT_EQ(k.find('/'), std::string::npos);
  EXPECT_EQ(k.find(' '), std::string::npos);

  // Both spellings of zero are one center.
  EXPECT_EQ(recipe_cache_key(10.0, 0.0), recipe_cache_key(10.0, -0.0));

  // Every field is keyed.
  EXPECT_NE(recipe_cache_key(271.5, 0.5), k);
  EXPECT_NE(recipe_cache_key(271.4, 0.25), k);
  EXPECT_NE(recipe_cache_key(271.4, 0.5, 0x1p-32), k);
  EXPECT_NE(recipe_cache_key(271.4, 0.5, gauss::kDefaultSmoothingEps, 48), k);

  // A nearby-but-different double is a different key (no lossy rounding).
  EXPECT_NE(recipe_cache_key(std::nextafter(271.4, 272.0), 0.5), k);

  EXPECT_THROW(recipe_cache_key(0.0, 0.0), Error);
  EXPECT_THROW(recipe_cache_key(-3.0, 0.0), Error);
  EXPECT_THROW(recipe_cache_key(std::nan(""), 0.0), Error);
  EXPECT_THROW(
      recipe_cache_key(1.0, std::numeric_limits<double>::infinity()), Error);
}

// --------------------------------------------------------------- planning ---

TEST(RecipePlanning, SmoothingAwareChoiceForIssueTarget) {
  const auto bases = gauss::default_recipe_bases(64);
  const auto r = gauss::plan_recipe(271.4, 0.5, bases);

  // Every accepted plan must satisfy the comb-smoothing bound.
  const double eta = gauss::smoothing_eta(r.eps);
  EXPECT_GE(r.base.sigma(), r.k * eta);
  EXPECT_GE(r.achieved_sigma, 271.4);
  EXPECT_NEAR(r.achieved_sigma,
              conv::ConvolutionSampler::combined_sigma(r.base.sigma(), r.k),
              1e-9);
  // The ladder covers this target to about a percent, far better than the
  // 12% the nearest paper set (sigma_215, k=1) would give.
  EXPECT_LT(r.sigma_loss, 0.02);
  EXPECT_EQ(r.shift_int, 0);
  EXPECT_DOUBLE_EQ(r.shift_frac, 0.5);
}

TEST(RecipePlanning, NegativeAndIntegerCenters) {
  const auto bases = gauss::default_recipe_bases(64);
  const auto r = gauss::plan_recipe(50.0, -2.25, bases);
  EXPECT_EQ(r.shift_int, -3);
  EXPECT_DOUBLE_EQ(r.shift_frac, 0.75);

  const auto ri = gauss::plan_recipe(50.0, -7.0, bases);
  EXPECT_EQ(ri.shift_int, -7);
  EXPECT_DOUBLE_EQ(ri.shift_frac, 0.0);
}

TEST(RecipePlanning, TargetBelowEveryBaseStillServedAtK1) {
  const auto bases = gauss::default_recipe_bases(64);
  const auto r = gauss::plan_recipe(1.0, 0.0, bases);
  EXPECT_EQ(r.k, 1);
  // Overshoot is honest: smallest base * sqrt(2), loss reported.
  EXPECT_NEAR(r.achieved_sigma, 2.0 * std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(r.sigma_loss, r.achieved_sigma - 1.0, 1e-9);
}

TEST(RecipePlanning, RejectsDegenerateTargets) {
  const auto bases = gauss::default_recipe_bases(64);
  EXPECT_THROW(gauss::plan_recipe(0.0, 0.0, bases), Error);
  EXPECT_THROW(gauss::plan_recipe(-5.0, 0.0, bases), Error);
  EXPECT_THROW(
      gauss::plan_recipe(std::numeric_limits<double>::infinity(), 0.0, bases),
      Error);
  EXPECT_THROW(gauss::plan_recipe(10.0, std::nan(""), bases), Error);
  EXPECT_THROW(gauss::plan_recipe(10.0, 0.0, {}), Error);
  // A target no candidate can smooth its way to.
  EXPECT_THROW(gauss::plan_recipe(1e9, 0.0, bases), Error);
}

// ---------------------------------------------------- registry recipe cache ---

TEST(RecipeCache, MemoDiskHierarchyAndRoundTrip) {
  const std::string dir = fresh_dir("recipes");
  SamplerRegistry::Source src;

  SamplerRegistry reg({.cache_dir = dir});
  const auto planned = reg.get_recipe(271.4, 0.5, gauss::kDefaultSmoothingEps,
                                      64, &src);
  EXPECT_EQ(src, SamplerRegistry::Source::kSynthesized);  // freshly planned
  reg.get_recipe(271.4, 0.5, gauss::kDefaultSmoothingEps, 64, &src);
  EXPECT_EQ(src, SamplerRegistry::Source::kMemory);

  // A second registry ("new process") loads the persisted frame.
  SamplerRegistry warm({.cache_dir = dir});
  const auto loaded = warm.get_recipe(271.4, 0.5, gauss::kDefaultSmoothingEps,
                                      64, &src);
  EXPECT_EQ(src, SamplerRegistry::Source::kDisk);
  EXPECT_EQ(loaded.k, planned.k);
  EXPECT_EQ(loaded.base.sigma_num, planned.base.sigma_num);
  EXPECT_DOUBLE_EQ(loaded.achieved_sigma, planned.achieved_sigma);
  EXPECT_DOUBLE_EQ(loaded.shift_frac, planned.shift_frac);
  EXPECT_EQ(loaded.shift_int, planned.shift_int);
}

TEST(RecipeCache, CorruptedOrMisfiledFramesReplan) {
  const std::string dir = fresh_dir("recipes-bad");
  const std::string key = recipe_cache_key(40.0, 0.0);
  const std::string path = dir + "/" + key + ".cgs";
  SamplerRegistry::Source src;

  {  // Seed, then corrupt a payload byte.
    SamplerRegistry reg({.cache_dir = dir});
    reg.get_recipe(40.0, 0.0);
    auto bytes = *serial::read_file(path);
    bytes[bytes.size() - 2] ^= 0x10;
    ASSERT_TRUE(serial::write_file_atomic(path, bytes));
    SamplerRegistry reg2({.cache_dir = dir});
    reg2.get_recipe(40.0, 0.0, gauss::kDefaultSmoothingEps, 64, &src);
    EXPECT_EQ(src, SamplerRegistry::Source::kSynthesized);
  }
  {  // A valid frame misfiled under another target's key must be a miss.
    SamplerRegistry reg({.cache_dir = dir});
    reg.get_recipe(40.0, 0.0);
    std::filesystem::copy_file(path,
                               dir + "/" + recipe_cache_key(80.0, 0.0) + ".cgs");
    SamplerRegistry reg2({.cache_dir = dir});
    const auto r = reg2.get_recipe(80.0, 0.0, gauss::kDefaultSmoothingEps, 64,
                                   &src);
    EXPECT_EQ(src, SamplerRegistry::Source::kSynthesized);
    EXPECT_GE(r.achieved_sigma, 80.0);
  }
}

TEST(RecipeCache, SerialRejectsInconsistentFrames) {
  auto good = gauss::plan_recipe(100.0, 0.25, gauss::default_recipe_bases(64));
  auto bytes = serial::serialize(good);
  EXPECT_EQ(serial::deserialize_recipe(bytes).k, good.k);

  auto bad = good;
  bad.k = 0;  // stride below 1 must not deserialize
  EXPECT_THROW(serial::deserialize_recipe(serial::serialize(bad)), Error);
  bad = good;
  bad.achieved_sigma = good.target_sigma - 1.0;  // achieved < target
  EXPECT_THROW(serial::deserialize_recipe(serial::serialize(bad)), Error);
  // Individually valid fields whose combination overflows the combine: a
  // max-stride k over the widest base's support must not load.
  bad = good;
  bad.base = gauss::GaussianParams::sigma_215(64);
  bad.k = conv::ConvolutionSampler::max_stride();
  bad.achieved_sigma = 1e9;
  bad.target_sigma = 1e8;
  EXPECT_THROW(serial::deserialize_recipe(serial::serialize(bad)), Error);
  // Shift fields are derived from the center; a frame that disagrees with
  // itself (wrong-centered serving, or a combine-overflowing shift_int)
  // must not load.
  bad = good;
  bad.shift_int += 1;
  EXPECT_THROW(serial::deserialize_recipe(serial::serialize(bad)), Error);
  bad = good;
  bad.shift_frac = 0.125;  // good.target_center is 100 @ c=0.25
  EXPECT_THROW(serial::deserialize_recipe(serial::serialize(bad)), Error);
}

// ----------------------------------------------------------------- service ---

TEST(Service, DeterministicAcrossInstancesAndSeedSensitive) {
  SamplerRegistry reg({.cache_dir = shared_dir()});
  // kWide: skip the compiled-kernel host compile; these tests exercise the
  // service logic, not peak throughput.
  ServiceOptions opts{.backend = Backend::kWide, .num_threads = 2,
                      .root_seed = 2019};
  GaussianService a(reg, opts), b(reg, opts);
  const auto va = a.sample(271.4, 0.5, 50000);
  EXPECT_EQ(va, b.sample(271.4, 0.5, 50000));

  ServiceOptions other = opts;
  other.root_seed = 2020;
  GaussianService c(reg, other);
  EXPECT_NE(va, c.sample(271.4, 0.5, 50000));
}

TEST(Service, StreamsMaterializeLazilyPerTarget) {
  SamplerRegistry reg({.cache_dir = shared_dir()});
  GaussianService svc(reg, {.backend = Backend::kWide, .num_threads = 1,
                            .root_seed = 1});
  EXPECT_EQ(svc.num_streams(), 0u);
  (void)svc.plan(271.4, 0.5);  // planning alone spins up nothing
  EXPECT_EQ(svc.num_streams(), 0u);
  (void)svc.sample(271.4, 0.5, 64);
  EXPECT_EQ(svc.num_streams(), 1u);
  (void)svc.sample(271.4, 0.5, 64);
  EXPECT_EQ(svc.num_streams(), 1u);  // reused, not rebuilt
  (void)svc.sample(30.0, -7.0, 64);
  EXPECT_EQ(svc.num_streams(), 2u);
  svc.sample(271.4, 0.5, std::span<std::int32_t>{});  // empty request: no-op
  EXPECT_EQ(svc.num_streams(), 2u);
}

TEST(Service, IntegerCenterMomentsAndShift) {
  SamplerRegistry reg({.cache_dir = shared_dir()});
  GaussianService svc(reg, {.backend = Backend::kWide, .num_threads = 2,
                            .root_seed = 77});
  const auto recipe = svc.plan(30.0, -7.0);
  const auto v = svc.sample(30.0, -7.0, 200000);
  double mean = 0;
  for (auto x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0;
  for (auto x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  // Standard error of the mean is sigma/sqrt(n) ~ 0.07; allow 5 SE.
  EXPECT_NEAR(mean, -7.0, 0.35);
  EXPECT_NEAR(std::sqrt(var) / recipe.achieved_sigma, 1.0, 0.02);
}

// The ISSUE acceptance criterion: a non-synthesized target (sigma=271.4,
// c=0.5) served in batch passes chi-square + Renyi acceptance.
TEST(Service, NonSynthesizedTargetPassesAcceptance) {
  SamplerRegistry reg({.cache_dir = shared_dir()});
  GaussianService svc(reg, {.backend = Backend::kWide, .num_threads = 2,
                            .root_seed = 4242});
  const auto recipe = svc.plan(271.4, 0.5);
  const auto v = svc.sample(271.4, 0.5, 400000);

  const gauss::ProbMatrix base(recipe.base);
  const auto acc = stats::accept_convolution(v, base, recipe);
  EXPECT_TRUE(acc.accepted()) << acc.describe();
  EXPECT_GE(acc.chi.p_value, 1e-4) << acc.describe();
  EXPECT_LE(acc.renyi, 1.0 + 1e-3) << acc.describe();
}

// -------------------------------------------- cross-backend differential ---

// The engine consumes randomness in the wide order on every backend, so
// the whole service stack above it — recipes, convolver, rounding — must
// produce bit-identical streams whichever backend serves a target. A
// (sigma, c) grid covering integer/fractional/negative centers and both
// synthesized-adjacent and far targets, differentially across
// compiled (when a host compiler exists) / wide / bitsliced.
TEST(ServiceBackendDifferential, IdenticalStreamsAcrossBackendsOnSigmaCGrid) {
  SamplerRegistry reg({.cache_dir = shared_dir()});
  const struct {
    double sigma, center;
  } grid[] = {{20.0, 0.0}, {20.0, 0.5}, {271.4, 0.5}, {64.0, -3.25}};

  for (const auto& target : grid) {
    // The compiled backend joins on the first grid point only — hosting
    // the netlist C costs seconds per target and the kernel is already
    // held bit-identical to the interpreters at sampler level
    // (test_compiled); one service-level point pins the integration.
    std::vector<Backend> backends = {Backend::kWide, Backend::kBitsliced};
    if (&target == &grid[0] && ct::CompiledKernel::is_available())
      backends.push_back(Backend::kCompiled);

    std::vector<std::vector<std::int32_t>> streams;
    for (const Backend backend : backends) {
      GaussianService svc(reg, {.backend = backend, .num_threads = 2,
                                .root_seed = 616});
      streams.push_back(svc.sample(target.sigma, target.center, 40000));
    }
    for (std::size_t b = 1; b < streams.size(); ++b)
      EXPECT_EQ(streams[0], streams[b])
          << "sigma=" << target.sigma << " c=" << target.center
          << " backend " << backend_name(backends[b]) << " diverged from "
          << backend_name(backends[0]);
  }
}

// Chi-square + Renyi acceptance on the service path the verification lane
// sits next to: what the dispatcher's gauss lane serves while sign/verify
// traffic runs must still be the designed distribution, whichever
// backend. (The signing-side base streams are covered by the signature
// verification itself: every signature in test_verify's 1k differential
// is a draw from these streams that verified.)
TEST(ServiceBackendDifferential, GridTargetPassesAcceptanceOnBothInterpreters) {
  SamplerRegistry reg({.cache_dir = shared_dir()});
  for (const Backend backend : {Backend::kWide, Backend::kBitsliced}) {
    GaussianService svc(reg, {.backend = backend, .num_threads = 2,
                              .root_seed = 909});
    const auto recipe = svc.plan(64.0, -3.25);
    const auto v = svc.sample(64.0, -3.25, 200000);
    const gauss::ProbMatrix base(recipe.base);
    const auto acc = stats::accept_convolution(v, base, recipe);
    EXPECT_TRUE(acc.accepted())
        << backend_name(backend) << ": " << acc.describe();
    EXPECT_GE(acc.chi.p_value, 1e-4) << acc.describe();
  }
}

TEST(Acceptance, RenyiRejectsCombViolatingPlan) {
  // A hand-built recipe violating the smoothing bound (sigma_0=2, k=45):
  // the convolution is a spiky comb; the design-vs-ideal Renyi check must
  // reject it even though a chi-square against its own design would pass.
  gauss::ConvolutionRecipe bad;
  bad.base = gauss::GaussianParams::sigma_2(64);
  bad.k = 45;
  bad.target_sigma = 90.0;
  bad.achieved_sigma =
      conv::ConvolutionSampler::combined_sigma(bad.base.sigma(), bad.k);
  bad.sigma_loss = (bad.achieved_sigma - bad.target_sigma) / bad.target_sigma;

  const gauss::ProbMatrix base(bad.base);
  const auto design = stats::convolution_design_pmf(base, bad);
  const auto ideal = stats::ideal_gaussian_pmf(
      bad.achieved_sigma, 0.0, design.min_value, design.max_value());
  EXPECT_GT(stats::renyi_divergence(design, ideal, 2.0), 1.5);

  // And the planner refuses to produce such a pair in the first place.
  const auto planned =
      gauss::plan_recipe(90.0, 0.0, gauss::default_recipe_bases(64));
  EXPECT_GE(planned.base.sigma(),
            planned.k * gauss::smoothing_eta(planned.eps));
}

}  // namespace
}  // namespace cgs::engine
