// The batch-first Falcon pipeline: BlockSource adapters, the batch-aware
// SamplerZ, cross-backend signature validity, SigningService determinism,
// tree caching, and multi-threaded stats aggregation.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/blocksource.h"
#include "conv/convolution.h"
#include "ct/buffered.h"
#include "ct/compiled_sampler.h"
#include "ct/synthesis.h"
#include "engine/block_source.h"
#include "engine/registry.h"
#include "falcon/sign.h"
#include "falcon/signing_service.h"
#include "falcon/verify.h"
#include "prng/chacha20.h"
#include "prng/splitmix.h"

namespace cgs::falcon {
namespace {

engine::SamplerRegistry& registry() {
  // In-process memo only: these tests must not depend on (or pollute) the
  // user's on-disk cache state.
  static engine::SamplerRegistry reg({.cache_dir = "", .use_disk = false});
  return reg;
}

const KeyPair& shared_key() {
  static const KeyPair kp = [] {
    prng::ChaCha20Source rng(4242);
    return keygen(FalconParams::for_degree(64), rng);
  }();
  return kp;
}

bool sigs_equal(const Signature& a, const Signature& b) {
  return a.nonce == b.nonce && a.s1 == b.s1;
}

TEST(BlockSource, ScalarShimMatchesDirectDraws) {
  auto synth = registry().get(gauss::GaussianParams::sigma_2(64));
  ct::BufferedBitslicedSampler direct(*synth);
  ct::BufferedBitslicedSampler shimmed(*synth);
  prng::ChaCha20Source rng1(5), rng2(5);
  ScalarBlockSource src(shimmed, &rng2);
  std::vector<std::int32_t> block(257);
  src.fill_base(block);
  for (std::int32_t v : block) EXPECT_EQ(v, direct.sample(rng1));
  EXPECT_EQ(src.preferred_block(), 1u);
}

TEST(BlockSource, EngineStreamIdenticalAcrossInterpretedBackends) {
  auto synth = registry().get(gauss::GaussianParams::sigma_2(64));
  // The engine consumes randomness in the wide order on every backend
  // (64-lane backends replay the interleaved word slices), so for one
  // seed the bitsliced and wide engines are one stream — backends can be
  // swapped in production without changing a single emitted sample. The
  // compiled backend joins this grid in test_service's cross-backend
  // differential test.
  const auto run = [&](engine::Backend backend) {
    engine::EngineOptions opts;
    opts.backend = backend;
    opts.num_threads = 1;
    opts.root_seed = 77;
    engine::SamplerEngine eng(synth, opts);
    std::vector<std::int32_t> out(500);
    eng.sample(out);
    return out;
  };
  EXPECT_EQ(run(engine::Backend::kBitsliced), run(engine::Backend::kWide));
}

TEST(BlockSource, EngineSourceServesBaseAndWords) {
  auto synth = registry().get(gauss::GaussianParams::sigma_2(64));
  engine::EngineOptions opts;
  opts.num_threads = 1;
  engine::SamplerEngine eng(synth, opts);
  engine::EngineBlockSource src(eng, 99, 256);
  EXPECT_EQ(src.preferred_block(), 256u);
  EXPECT_TRUE(src.constant_time());
  std::vector<std::int32_t> base(512);
  src.fill_base(base);
  bool nonzero = false;
  for (std::int32_t v : base) nonzero |= v != 0;
  EXPECT_TRUE(nonzero);
  // Word stream is the deterministic ChaCha20 stream for the seed.
  std::vector<std::uint64_t> words(8);
  src.fill_words(words);
  prng::ChaCha20Source ref(99);
  for (std::uint64_t w : words) EXPECT_EQ(w, ref.next_word());
}

TEST(ChaCha, FillWordsMatchesNextWordStream) {
  // The bulk (8-blocks-at-a-time) path must be bit-identical to scalar
  // draws, including when the two are interleaved mid-block.
  prng::ChaCha20Source bulk(123), scalar(123);
  std::vector<std::uint64_t> got;
  got.reserve(700);
  std::vector<std::uint64_t> buf;
  for (std::size_t len : {1u, 7u, 64u, 3u, 129u, 256u, 5u, 33u}) {
    buf.assign(len, 0);
    bulk.fill_words(buf);
    got.insert(got.end(), buf.begin(), buf.end());
    got.push_back(bulk.next_word());  // interleave a scalar draw
  }
  for (std::uint64_t w : got) EXPECT_EQ(w, scalar.next_word());
}

TEST(SamplerZBatch, BlockAndShimAgreeOnMoments) {
  auto synth = registry().get(gauss::GaussianParams::sigma_2(64));
  engine::EngineOptions opts;
  opts.num_threads = 1;
  engine::SamplerEngine eng(synth, opts);
  engine::EngineBlockSource src(eng, 3, 512);
  SamplerZ sz(src, 2.0);
  const double c = -2.4, sigma = 1.4;
  double sum = 0, sum_sq = 0;
  const int k = 40000;
  for (int i = 0; i < k; ++i) {
    const double z = sz.sample(c, sigma);
    sum += z;
    sum_sq += z * z;
  }
  const double mean = sum / k;
  const double var = sum_sq / k - mean * mean;
  EXPECT_NEAR(mean, c, 0.04);
  EXPECT_NEAR(var, sigma * sigma, 0.1);
  EXPECT_GT(sz.base_calls(), static_cast<std::uint64_t>(k));
  EXPECT_EQ(sz.base_calls() - static_cast<std::uint64_t>(k),
            sz.rejections());
}

TEST(SignerBatch, BlockSourceSignerVerifies) {
  const KeyPair& kp = shared_key();
  auto synth = registry().get(gauss::GaussianParams::sigma_2(128));
  engine::EngineOptions opts;
  opts.num_threads = 1;
  engine::SamplerEngine eng(synth, opts);
  engine::EngineBlockSource src(eng, 11, 512);
  Signer signer(kp, src);
  Verifier verifier(kp.h, kp.params);
  SignStats stats;
  for (int i = 0; i < 3; ++i) {
    const std::string msg = "batch message #" + std::to_string(i);
    const Signature sig = signer.sign(msg, &stats);
    EXPECT_TRUE(verifier.verify(msg, sig));
    EXPECT_FALSE(verifier.verify(msg + "!", sig));
  }
  EXPECT_GE(stats.attempts, 3u);
  EXPECT_GE(stats.base_samples, 3 * 2 * kp.params.n);
}

class ServiceBackends : public ::testing::TestWithParam<engine::Backend> {};

TEST_P(ServiceBackends, SameMessageKeySeedAllVerify) {
  if (GetParam() == engine::Backend::kCompiled &&
      !ct::CompiledKernel::is_available())
    GTEST_SKIP() << "no host compiler";
  const KeyPair& kp = shared_key();
  SigningOptions opts;
  opts.backend = GetParam();
  opts.num_threads = 2;
  opts.root_seed = 2024;
  SigningService svc(registry(), opts);
  Verifier verifier(kp.h, kp.params);
  const std::string_view msgs[] = {"cross-backend message", "another",
                                   "third"};
  const auto sigs = svc.sign_many(kp, msgs);
  ASSERT_EQ(sigs.size(), 3u);
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    EXPECT_TRUE(verifier.verify(msgs[i], sigs[i]))
        << engine::backend_name(svc.backend());
    EXPECT_FALSE(verifier.verify("tampered", sigs[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ServiceBackends,
                         ::testing::Values(engine::Backend::kBitsliced,
                                           engine::Backend::kWide,
                                           engine::Backend::kCompiled));

TEST(Service, DeterministicForFixedSeedAndThreads) {
  const KeyPair& kp = shared_key();
  std::vector<std::string> storage;
  std::vector<std::string_view> msgs;
  for (int i = 0; i < 7; ++i)
    storage.push_back("deterministic #" + std::to_string(i));
  for (const auto& s : storage) msgs.push_back(s);

  SigningOptions opts;
  opts.backend = engine::Backend::kWide;
  opts.num_threads = 2;
  opts.root_seed = 77;
  SigningService a(registry(), opts), b(registry(), opts);
  const auto sa = a.sign_many(kp, msgs);
  const auto sb = b.sign_many(kp, msgs);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i)
    EXPECT_TRUE(sigs_equal(sa[i], sb[i])) << i;

  // Streams continue across calls: a second identical batch from both
  // services still agrees (and differs from the first batch).
  const auto sa2 = a.sign_many(kp, msgs);
  const auto sb2 = b.sign_many(kp, msgs);
  for (std::size_t i = 0; i < sa2.size(); ++i) {
    EXPECT_TRUE(sigs_equal(sa2[i], sb2[i])) << i;
    EXPECT_FALSE(sigs_equal(sa[i], sa2[i])) << i;
  }

  // A different root seed diverges.
  SigningOptions other = opts;
  other.root_seed = 78;
  SigningService c(registry(), other);
  const auto sc = c.sign_many(kp, msgs);
  bool differs = false;
  for (std::size_t i = 0; i < sc.size(); ++i)
    differs |= !sigs_equal(sa[i], sc[i]);
  EXPECT_TRUE(differs);
}

TEST(Service, TreeCachedPerKeyAndStatsAggregate) {
  const KeyPair& kp = shared_key();
  prng::ChaCha20Source rng(55);
  const KeyPair other = keygen(FalconParams::for_degree(64), rng);

  SigningOptions opts;
  opts.backend = engine::Backend::kBitsliced;
  opts.num_threads = 3;
  SigningService svc(registry(), opts);
  EXPECT_EQ(svc.num_cached_trees(), 0u);

  const std::string_view batch[] = {"m0", "m1", "m2", "m3", "m4"};
  SignStats call_stats;
  (void)svc.sign_many(kp, batch, &call_stats);
  EXPECT_EQ(svc.num_cached_trees(), 1u);
  (void)svc.sign_many(kp, batch);
  EXPECT_EQ(svc.num_cached_trees(), 1u);  // reused, not rebuilt
  (void)svc.sign(other, "different key");
  EXPECT_EQ(svc.num_cached_trees(), 2u);

  // Per-call stats cover the whole batch; lifetime stats aggregate across
  // workers and calls without racing (counters are per-worker, summed on
  // demand).
  EXPECT_GE(call_stats.attempts, 5u);
  EXPECT_GE(call_stats.base_samples, 5 * 2 * kp.params.n);
  const SignStats total = svc.stats();
  EXPECT_GE(total.attempts, 11u);
  EXPECT_GT(total.base_samples, call_stats.base_samples);
  // Every proposal happens inside some sign_with, so the aggregated
  // SamplerZ counters reconcile exactly with the SignStats totals.
  EXPECT_EQ(svc.base_calls(), total.base_samples);
  EXPECT_LT(svc.rejections(), svc.base_calls());
}

TEST(Service, EmptyBatchIsFine) {
  SigningOptions opts;
  opts.backend = engine::Backend::kBitsliced;
  opts.num_threads = 2;
  SigningService svc(registry(), opts);
  EXPECT_TRUE(svc.sign_many(shared_key(), {}).empty());
}

TEST(ConvolutionCombine, SingleSourceOfTruth) {
  // The scalar sampler's combine is BatchConvolver::combine_one: same
  // result as the vectorized combine, and the same loud overflow failure.
  EXPECT_EQ(conv::BatchConvolver::combine_one(3, -2, 5), 3 - 10);
  std::int32_t x1[] = {3}, x2[] = {-2}, out[1];
  conv::BatchConvolver bc(5);
  bc.combine(x1, x2, out);
  EXPECT_EQ(out[0], conv::BatchConvolver::combine_one(3, -2, 5));
  EXPECT_THROW(
      (void)conv::BatchConvolver::combine_one(0, 1 << 20, 1 << 12), Error);
}

}  // namespace
}  // namespace cgs::falcon
