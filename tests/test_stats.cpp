// Statistics toolkit: chi-square machinery, Welch t-test / dudect, and the
// convolution sampler for large sigma.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "cdt/cdt_samplers.h"
#include "conv/convolution.h"
#include "prng/splitmix.h"
#include "stats/chisquare.h"
#include "stats/dudect.h"

namespace cgs::stats {
namespace {

TEST(GammaQ, KnownValues) {
  // Q(1/2, x) = erfc(sqrt(x)); spot-check a few points.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(gamma_q(0.5, x), std::erfc(std::sqrt(x)), 1e-10) << x;
  }
  // Chi-square with 2 dof: Q(1, x/2) = exp(-x/2).
  for (double x : {1.0, 3.0, 10.0})
    EXPECT_NEAR(gamma_q(1.0, x / 2), std::exp(-x / 2), 1e-10);
  EXPECT_NEAR(gamma_q(3.0, 0.0), 1.0, 1e-12);
}

TEST(ChiSquare, PerfectFitHasHighP) {
  std::vector<double> probs = {0.25, 0.25, 0.25, 0.25};
  std::vector<std::uint64_t> obs = {2500, 2500, 2500, 2500};
  const auto r = chi_square(obs, probs);
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
  EXPECT_GT(r.p_value, 0.999);
}

TEST(ChiSquare, GrossMismatchHasLowP) {
  std::vector<double> probs = {0.25, 0.25, 0.25, 0.25};
  std::vector<std::uint64_t> obs = {4000, 1000, 2500, 2500};
  EXPECT_LT(chi_square(obs, probs).p_value, 1e-10);
}

TEST(ChiSquare, PoolsSparseTails) {
  // Tail cells with expected < 5 are pooled instead of blowing up.
  std::vector<double> probs = {0.9, 0.05, 0.03, 0.015, 0.004, 0.0009, 0.0001};
  std::vector<std::uint64_t> obs = {903, 47, 31, 14, 4, 1, 0};
  const auto r = chi_square(obs, probs);
  EXPECT_GT(r.p_value, 0.01);
  EXPECT_LT(r.dof, 7);
}

TEST(ChiSquare, UniformRandomPassesItself) {
  std::mt19937_64 gen(3);
  std::vector<std::uint64_t> obs(16, 0);
  for (int i = 0; i < 160000; ++i) ++obs[gen() % 16];
  std::vector<double> probs(16, 1.0 / 16);
  EXPECT_GT(chi_square(obs, probs).p_value, 1e-5);
}

TEST(Histogram, CountsAndRender) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.add(0);
  for (int i = 0; i < 5; ++i) h.add(-2);
  h.add(7);
  EXPECT_EQ(h.total(), 16u);
  EXPECT_EQ(h.count(0), 10u);
  EXPECT_EQ(h.count(-2), 5u);
  EXPECT_EQ(h.count(3), 0u);
  const std::string r = h.render(20);
  EXPECT_NE(r.find("####"), std::string::npos);
}

TEST(Welch, IdenticalPopulationsLowT) {
  std::mt19937_64 gen(4);
  std::normal_distribution<double> d(100.0, 5.0);
  WelchTTest t;
  for (int i = 0; i < 20000; ++i) t.push(static_cast<int>(gen() & 1), d(gen));
  EXPECT_LT(std::fabs(t.result().t), 4.5);
  EXPECT_FALSE(t.result().leaky());
}

TEST(Welch, ShiftedPopulationsHighT) {
  std::mt19937_64 gen(5);
  std::normal_distribution<double> d0(100.0, 5.0), d1(101.0, 5.0);
  WelchTTest t;
  for (int i = 0; i < 20000; ++i) {
    const int cls = static_cast<int>(gen() & 1);
    t.push(cls, cls ? d1(gen) : d0(gen));
  }
  EXPECT_TRUE(t.result().leaky());
  EXPECT_NE(t.result().describe().find("LEAKY"), std::string::npos);
}

TEST(Dudect, FlagsArtificialTimingLeak) {
  // Class-dependent busy loop: a blatant leak the harness must flag.
  volatile int sink = 0;
  const auto r = dudect(
      [&](int cls) {
        const int iters = 60 + 80 * cls;
        for (int i = 0; i < iters; ++i) sink = sink + i;
      },
      {.measurements = 6000, .warmup = 200, .keep_percentile = 0.9});
  EXPECT_TRUE(r.leaky()) << r.describe();
}

TEST(Dudect, ClassIndependentWorkLooksFlat) {
  volatile int sink = 0;
  const auto r = dudect(
      [&](int) {
        for (int i = 0; i < 100; ++i) sink = sink + i;
      },
      {.measurements = 6000, .warmup = 200, .keep_percentile = 0.9});
  // Generous threshold: CI machines are noisy, but identical work should
  // not produce a strong signal.
  EXPECT_LT(std::fabs(r.t), 15.0) << r.describe();
}

TEST(Convolution, SigmaFormulaAndStride) {
  EXPECT_NEAR(conv::ConvolutionSampler::combined_sigma(6.15543, 35),
              6.15543 * std::sqrt(1226.0), 1e-9);
  const int k = conv::ConvolutionSampler::stride_for(6.15543, 215.0);
  EXPECT_GE(conv::ConvolutionSampler::combined_sigma(6.15543, k), 215.0);
  EXPECT_LT(conv::ConvolutionSampler::combined_sigma(6.15543, k - 1), 215.0);
}

TEST(Convolution, StrideEdgeCases) {
  using CS = conv::ConvolutionSampler;
  // k=1 boundary: target equal to the base, and up to base*sqrt(2), both
  // resolve to the minimal stride; just past sqrt(2) bumps to 2.
  EXPECT_EQ(CS::stride_for(6.15543, 6.15543), 1);
  EXPECT_EQ(CS::stride_for(6.15543, 6.15543 * std::sqrt(2.0) - 1e-9), 1);
  EXPECT_EQ(CS::stride_for(6.15543, 6.15543 * std::sqrt(2.0) + 1e-9), 2);

  // Closed form agrees with the definition across magnitudes.
  for (double target : {10.0, 215.0, 1e4, 1e6}) {
    const int k = CS::stride_for(2.0, target);
    EXPECT_GE(CS::combined_sigma(2.0, k), target);
    if (k > 1) EXPECT_LT(CS::combined_sigma(2.0, k - 1), target);
  }

  // Target below the base is a contract violation (a convolution cannot
  // shrink sigma), not a silent k=1.
  EXPECT_THROW(CS::stride_for(6.15543, 3.0), Error);
  // Large-sigma overflow: a stride beyond max_stride() would overflow the
  // int32 combine; the guard throws instead of wrapping.
  EXPECT_THROW(CS::stride_for(1.0, 3e6), Error);
  EXPECT_THROW(
      CS::stride_for(1.0, std::numeric_limits<double>::infinity()), Error);
  // The largest admissible stride still resolves exactly.
  const double at_max =
      CS::combined_sigma(1.0, CS::max_stride());
  EXPECT_EQ(CS::stride_for(1.0, at_max), CS::max_stride());
}

TEST(Convolution, CombineOverflowIsCaughtNotWrapped) {
  // max_stride() bounds k, not k * support: a wide base under the maximal
  // stride must throw from the 64-bit combine instead of wrapping int32.
  struct WideBase final : IntSampler {
    std::int32_t sample(RandomBitSource&) override { return 3000; }
    std::uint32_t sample_magnitude(RandomBitSource&) override { return 3000; }
    const char* name() const override { return "wide-stub"; }
    bool constant_time() const override { return true; }
  } base;
  conv::ConvolutionSampler cs(base, conv::ConvolutionSampler::max_stride());
  prng::SplitMix64Source rng(1);
  EXPECT_THROW(cs.sample(rng), Error);
}

TEST(BatchConvolver, MatchesScalarCombineAndAllowsAliasing) {
  conv::BatchConvolver cv(7, -3, 0.0);
  EXPECT_FALSE(cv.randomized_rounding());
  prng::SplitMix64Source rng(9);
  std::vector<std::int32_t> x1(257), x2(257), out(257);
  for (std::size_t i = 0; i < x1.size(); ++i) {
    x1[i] = static_cast<std::int32_t>(rng.next_word() % 201) - 100;
    x2[i] = static_cast<std::int32_t>(rng.next_word() % 201) - 100;
  }
  cv.combine(x1, x2, out);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], x1[i] + 7 * x2[i] - 3) << i;

  // Documented aliasing: out == x1.
  std::vector<std::int32_t> inplace = x1;
  cv.combine(inplace, x2, inplace);
  EXPECT_EQ(inplace, out);
}

TEST(BatchConvolver, RandomizedRoundingIsBernoulliFrac) {
  const double frac = 0.25;
  conv::BatchConvolver cv(1, 0, frac);
  EXPECT_TRUE(cv.randomized_rounding());
  // threshold = frac * 2^64 exactly for dyadic frac.
  EXPECT_EQ(conv::BatchConvolver::bernoulli_threshold(0.0), 0u);
  EXPECT_EQ(conv::BatchConvolver::bernoulli_threshold(0.5), 1ull << 63);
  EXPECT_EQ(conv::BatchConvolver::bernoulli_threshold(0.25), 1ull << 62);

  prng::SplitMix64Source rng(11);
  std::vector<std::int32_t> zero(100000, 0), out(100000);
  cv.combine(zero, zero, rng, out);
  std::uint64_t ones = 0;
  for (auto v : out) {
    ASSERT_TRUE(v == 0 || v == 1);
    ones += static_cast<std::uint64_t>(v);
  }
  // Binomial(1e5, 0.25): sd ~ 137; allow 5 sigma.
  EXPECT_NEAR(static_cast<double>(ones), 25000.0, 700.0);
}

TEST(BatchConvolver, MaskedCombineCompactsValidPairs) {
  conv::BatchConvolver cv(10, 1, 0.0);
  prng::SplitMix64Source rng(13);
  // 128 lanes each; x1 keeps even lanes, x2 keeps lanes not divisible by 3.
  std::vector<std::int32_t> x1(128), x2(128);
  std::vector<std::uint64_t> m1(2, 0), m2(2, 0);
  for (int i = 0; i < 128; ++i) {
    x1[static_cast<std::size_t>(i)] = i;
    x2[static_cast<std::size_t>(i)] = 1000 + i;
    if (i % 2 == 0) m1[static_cast<std::size_t>(i / 64)] |= 1ull << (i % 64);
    if (i % 3 != 0) m2[static_cast<std::size_t>(i / 64)] |= 1ull << (i % 64);
  }
  std::vector<std::int32_t> out(64);
  const std::size_t n = cv.combine_masked(x1, m1, x2, m2, rng, out);
  // 64 valid lanes in x1, 85 in x2 -> 64 pairs, capped by out size.
  EXPECT_EQ(n, 64u);
  // First pair: lane 0 of x1 with lane 1 of x2 (lane 0 of x2 is dropped).
  EXPECT_EQ(out[0], 0 + 10 * 1001 + 1);
  // Second pair: lane 2 of x1, lane 2 of x2.
  EXPECT_EQ(out[1], 2 + 10 * 1002 + 1);

  // Short output: stops exactly at capacity.
  std::vector<std::int32_t> small(5);
  EXPECT_EQ(cv.combine_masked(x1, m1, x2, m2, rng, small), 5u);
}

TEST(Convolution, EmpiricalVarianceMatches) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_6_15543(128));
  const cdt::CdtTable t(m);
  cdt::CdtBinarySearchSampler base(t);
  const int k = conv::ConvolutionSampler::stride_for(6.15543, 215.0);
  conv::ConvolutionSampler conv_sampler(base, k);
  prng::SplitMix64Source rng(6);
  double sum_sq = 0;
  const int kSamples = 60000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = conv_sampler.sample(rng);
    sum_sq += v * v;
  }
  const double sigma_hat = std::sqrt(sum_sq / kSamples);
  const double sigma_target =
      conv::ConvolutionSampler::combined_sigma(6.15543, k);
  EXPECT_NEAR(sigma_hat / sigma_target, 1.0, 0.02);
}

TEST(Convolution, MagnitudeIsAbs) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(64));
  const cdt::CdtTable t(m);
  cdt::CdtLinearCtSampler base(t);
  conv::ConvolutionSampler cs(base, 3);
  EXPECT_TRUE(cs.constant_time());
  prng::SplitMix64Source rng(7);
  for (int i = 0; i < 100; ++i)
    EXPECT_GE(static_cast<std::int64_t>(cs.sample_magnitude(rng)), 0);
}

}  // namespace
}  // namespace cgs::stats
