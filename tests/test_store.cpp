// Key-state store subsystem: the shared bounded 2Q cache (admission and
// eviction order, scan resistance, byte budgets, pin exemption,
// single-flight coalescing, failed-build retry), the append-log KvStore
// (round trips, crash-safe torn-tail truncation, checksum rejection,
// compaction), the tree / NTT-key codecs' bit-exact round trips, and the
// services' eviction -> disk -> warm-start path staying bit-identical to
// the unbounded legacy behavior.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/registry.h"
#include "falcon/ffsampling.h"
#include "falcon/keygen.h"
#include "falcon/signing_service.h"
#include "falcon/state_codec.h"
#include "falcon/verification_service.h"
#include "falcon/verify.h"
#include "prng/chacha20.h"
#include "serial/serial.h"
#include "store/bounded_cache.h"
#include "store/kvstore.h"

namespace cgs::store {
namespace {

std::string fresh_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + "cgs-store-" + name + "-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

using IntCache = BoundedCache<int, int>;

IntCache::Built make_int(int v, std::size_t bytes = 0, bool warm = false) {
  return {std::make_shared<int>(v), bytes, warm};
}

int get(IntCache& cache, int key, std::size_t bytes = 0) {
  return *cache.get_or_build(key, [&] { return make_int(key * 10, bytes); });
}

// ---------------------------------------------------------------- 2Q core

TEST(BoundedCache, UnboundedByDefault) {
  IntCache cache;
  for (int k = 0; k < 100; ++k) get(cache, k);
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(BoundedCache, HitReturnsCachedValueWithoutRebuilding) {
  IntCache cache;
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return make_int(7);
  };
  EXPECT_EQ(*cache.get_or_build(1, build), 7);
  EXPECT_EQ(*cache.get_or_build(1, build), 7);
  EXPECT_EQ(builds, 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(BoundedCache, ProbationEvictsInFifoOrderBeforeProtected) {
  IntCache cache({.max_entries = 3});
  get(cache, 1);
  get(cache, 2);
  get(cache, 3);
  // Second touch promotes 1 to the protected LRU; 2 and 3 stay probation.
  get(cache, 1);

  get(cache, 4);  // over budget: probation FIFO front (2) goes first
  EXPECT_EQ(cache.peek(2), nullptr);
  EXPECT_NE(cache.peek(1), nullptr);
  EXPECT_NE(cache.peek(3), nullptr);
  EXPECT_NE(cache.peek(4), nullptr);

  get(cache, 5);  // then 3
  EXPECT_EQ(cache.peek(3), nullptr);
  EXPECT_NE(cache.peek(1), nullptr);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(BoundedCache, OneShotScanDoesNotFlushProtectedWorkingSet) {
  IntCache cache({.max_entries = 4});
  // Hot set: 1 and 2, both promoted.
  get(cache, 1);
  get(cache, 2);
  get(cache, 1);
  get(cache, 2);
  // Cold one-shot sweep of 20 tenants churns through probation only.
  for (int k = 100; k < 120; ++k) get(cache, k);
  EXPECT_NE(cache.peek(1), nullptr);
  EXPECT_NE(cache.peek(2), nullptr);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(BoundedCache, ProtectedEvictsLeastRecentlyUsedWhenProbationEmpty) {
  IntCache cache({.max_entries = 2});
  get(cache, 1);
  get(cache, 2);
  get(cache, 1);  // promote 1
  get(cache, 2);  // promote 2 (probation now empty); LRU order: 1, 2
  get(cache, 3);  // 3 in probation, over budget: protected LRU front = 1
  EXPECT_EQ(cache.peek(1), nullptr);
  EXPECT_NE(cache.peek(2), nullptr);
  EXPECT_NE(cache.peek(3), nullptr);
}

TEST(BoundedCache, ByteBudgetEvictsByCost) {
  IntCache cache({.max_bytes = 100});
  get(cache, 1, 60);
  EXPECT_EQ(cache.bytes(), 60u);
  get(cache, 2, 60);  // 120 > 100: evict 1 (probation FIFO)
  EXPECT_EQ(cache.peek(1), nullptr);
  EXPECT_NE(cache.peek(2), nullptr);
  EXPECT_EQ(cache.bytes(), 60u);
  EXPECT_EQ(cache.stats().bytes, 60u);
}

TEST(BoundedCache, PinBlocksEvictionUntilReleased) {
  IntCache cache({.max_entries = 1});
  auto pin_a = cache.get_or_build(1, [] { return make_int(10); });
  auto pin_b = cache.get_or_build(2, [] { return make_int(20); });
  // Both pinned: the cache tolerates the transient overshoot.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  pin_a = IntCache::Pinned();  // release 1 -> eviction resumes, 1 goes
  EXPECT_EQ(cache.peek(1), nullptr);
  EXPECT_NE(cache.peek(2), nullptr);
  EXPECT_EQ(cache.size(), 1u);

  // The surviving pin still reads its value.
  EXPECT_EQ(*pin_b, 20);
}

TEST(BoundedCache, StalePinReleaseIsHarmlessAfterReinsert) {
  IntCache cache({.max_entries = 4});
  auto pin_old = cache.get_or_build(1, [] { return make_int(10); });
  EXPECT_TRUE(cache.erase(1));
  // Same key, new generation.
  auto pin_new = cache.get_or_build(1, [] { return make_int(11); });
  pin_old = IntCache::Pinned();  // stale unpin: must not touch the new entry
  EXPECT_EQ(*pin_new, 11);
  pin_new = IntCache::Pinned();
  EXPECT_TRUE(cache.erase(1));  // pin count balanced: entry fully released
}

TEST(BoundedCache, WarmStartOutcomeAndCounter) {
  IntCache cache;
  auto pinned =
      cache.get_or_build(1, [] { return make_int(5, 0, /*warm=*/true); });
  EXPECT_EQ(pinned.outcome(), IntCache::Outcome::kWarmStart);
  auto again = cache.get_or_build(1, [] { return make_int(5); });
  EXPECT_EQ(again.outcome(), IntCache::Outcome::kHit);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.warm_starts, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(BoundedCache, ClearEmptiesEverything) {
  IntCache cache;
  get(cache, 1, 10);
  get(cache, 2, 10);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.peek(1), nullptr);
}

TEST(BoundedCache, SingleFlightCoalescesConcurrentMisses) {
  IntCache cache;
  std::atomic<int> builds{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> results(kThreads, -1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t] = *cache.get_or_build(42, [&] {
        builds.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return make_int(420);
      });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(builds.load(), 1);
  for (int r : results) EXPECT_EQ(r, 420);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(BoundedCache, FailedBuildIsRetriedNotCached) {
  IntCache cache;
  int calls = 0;
  const auto flaky = [&] {
    if (++calls == 1) throw Error("transient failure");
    return make_int(9);
  };
  EXPECT_THROW(cache.get_or_build(1, flaky), Error);
  // The failure was evicted, not memoized: the next request retries.
  EXPECT_EQ(*cache.get_or_build(1, flaky), 9);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.stats().misses, 1u);  // only the successful build counts
}

TEST(BoundedCache, ConcurrentDistinctKeysBuildInParallel) {
  IntCache cache({.max_entries = 16});
  std::vector<std::thread> threads;
  std::atomic<int> total{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i)
        total.fetch_add(get(cache, (t * 50 + i) % 24));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.size(), 16u);
  EXPECT_GT(total.load(), 0);
}

// ---------------------------------------------------------------- KvStore

std::vector<std::uint8_t> blob(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> v;
  for (int x : vals) v.push_back(static_cast<std::uint8_t>(x));
  return v;
}

TEST(KvStore, PutGetEraseRoundTrip) {
  KvStore kv({.dir = fresh_dir("roundtrip")});
  EXPECT_EQ(kv.get("a"), std::nullopt);
  EXPECT_TRUE(kv.put("a", blob({1, 2, 3})));
  EXPECT_TRUE(kv.put("b", blob({4})));
  EXPECT_EQ(kv.get("a"), blob({1, 2, 3}));
  EXPECT_EQ(kv.get("b"), blob({4}));
  EXPECT_TRUE(kv.contains("a"));
  EXPECT_EQ(kv.size(), 2u);

  EXPECT_TRUE(kv.put("a", blob({9, 9})));  // last write wins
  EXPECT_EQ(kv.get("a"), blob({9, 9}));
  EXPECT_EQ(kv.size(), 2u);

  EXPECT_TRUE(kv.erase("a"));
  EXPECT_EQ(kv.get("a"), std::nullopt);
  EXPECT_FALSE(kv.contains("a"));
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStore, LogIsOwnerOnlyIncludingAfterCompaction) {
  // The log persists secret signing state (encoded trees carry f and g),
  // so it must never be readable by other local users — including the
  // compaction temp file that gets renamed over it, and a pre-existing
  // log created lax by an older build.
  const std::string dir = fresh_dir("perms");
  struct ::stat st {};
  {
    KvStore kv({.dir = dir});
    kv.put("k", blob({1, 2, 3}));
    ASSERT_EQ(::stat(kv.log_path().c_str(), &st), 0);
    EXPECT_EQ(st.st_mode & 0777u, 0600u);
    kv.compact();
    ASSERT_EQ(::stat(kv.log_path().c_str(), &st), 0);
    EXPECT_EQ(st.st_mode & 0777u, 0600u);
    ASSERT_EQ(::chmod(kv.log_path().c_str(), 0644), 0);
  }
  KvStore reopened({.dir = dir});
  ASSERT_EQ(::stat(reopened.log_path().c_str(), &st), 0);
  EXPECT_EQ(st.st_mode & 0777u, 0600u);
  EXPECT_EQ(reopened.get("k"), blob({1, 2, 3}));
}

TEST(KvStore, PersistsAcrossReopen) {
  const std::string dir = fresh_dir("reopen");
  {
    KvStore kv({.dir = dir});
    kv.put("tree", blob({1, 2, 3, 4}));
    kv.put("gone", blob({5}));
    kv.erase("gone");
  }
  KvStore kv({.dir = dir});
  EXPECT_EQ(kv.get("tree"), blob({1, 2, 3, 4}));
  EXPECT_EQ(kv.get("gone"), std::nullopt);  // the tombstone replayed too
  EXPECT_EQ(kv.size(), 1u);
  EXPECT_EQ(kv.stats().truncated_bytes, 0u);
}

TEST(KvStore, TornTailIsTruncatedOnOpen) {
  const std::string dir = fresh_dir("torn");
  std::string path;
  {
    KvStore kv({.dir = dir});
    kv.put("ok1", blob({1}));
    kv.put("ok2", blob({2}));
    path = kv.log_path();
  }
  // Simulate a crash mid-append: garbage where the next record started.
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    const char junk[] = "\xff\xff\xff\xff\xff\xff\xff";
    f.write(junk, sizeof junk - 1);
  }
  KvStore kv({.dir = dir});
  EXPECT_EQ(kv.get("ok1"), blob({1}));
  EXPECT_EQ(kv.get("ok2"), blob({2}));
  EXPECT_EQ(kv.stats().truncated_bytes, 7u);
  // The tail was cut, so appends resume on a clean frame boundary.
  EXPECT_TRUE(kv.put("ok3", blob({3})));
  KvStore kv2({.dir = dir});
  EXPECT_EQ(kv2.get("ok3"), blob({3}));
  EXPECT_EQ(kv2.stats().truncated_bytes, 0u);
}

TEST(KvStore, PartialFinalRecordIsDropped) {
  const std::string dir = fresh_dir("partial");
  std::string path;
  std::uintmax_t full = 0;
  {
    KvStore kv({.dir = dir});
    kv.put("keep", blob({1, 2}));
    kv.put("lost", blob({3, 4, 5, 6, 7, 8}));
    path = kv.log_path();
    full = std::filesystem::file_size(path);
  }
  std::filesystem::resize_file(path, full - 5);  // crash mid-write
  KvStore kv({.dir = dir});
  EXPECT_EQ(kv.get("keep"), blob({1, 2}));
  EXPECT_EQ(kv.get("lost"), std::nullopt);
  EXPECT_GT(kv.stats().truncated_bytes, 0u);
}

TEST(KvStore, CorruptedChecksumRejectsTheRecord) {
  const std::string dir = fresh_dir("bitrot");
  std::string path;
  {
    KvStore kv({.dir = dir});
    kv.put("keep", blob({1, 2}));
    kv.put("rot", blob({3, 4, 5}));
    path = kv.log_path();
  }
  // Flip the last payload byte of the final record.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put('\x5a');
  }
  KvStore kv({.dir = dir});
  EXPECT_EQ(kv.get("keep"), blob({1, 2}));
  EXPECT_EQ(kv.get("rot"), std::nullopt);
  EXPECT_GT(kv.stats().truncated_bytes, 0u);
}

TEST(KvStore, ExplicitCompactionKeepsExactlyTheLiveSet) {
  const std::string dir = fresh_dir("compact");
  KvStoreOptions opts{.dir = dir};
  opts.compact_garbage_ratio = 0.0;  // manual only
  KvStore kv(opts);
  kv.put("a", blob({1}));
  kv.put("b", blob({2}));
  kv.put("c", blob({3}));
  kv.put("b", blob({22, 22}));  // garbage: old b
  kv.erase("c");                // garbage: c + tombstone
  const auto before = kv.stats();
  EXPECT_GT(before.file_bytes, before.live_bytes);

  kv.compact();
  const auto after = kv.stats();
  EXPECT_EQ(after.compactions, 1u);
  EXPECT_EQ(after.file_bytes, after.live_bytes);
  EXPECT_LT(after.file_bytes, before.file_bytes);
  EXPECT_EQ(kv.get("a"), blob({1}));
  EXPECT_EQ(kv.get("b"), blob({22, 22}));
  EXPECT_EQ(kv.get("c"), std::nullopt);

  // Writes after compaction land in the new log and persist.
  kv.put("d", blob({4}));
  KvStore reopened({.dir = dir});
  EXPECT_EQ(reopened.get("a"), blob({1}));
  EXPECT_EQ(reopened.get("b"), blob({22, 22}));
  EXPECT_EQ(reopened.get("d"), blob({4}));
  EXPECT_EQ(reopened.size(), 3u);
}

TEST(KvStore, AutoCompactionTriggersOnGarbageRatio) {
  KvStoreOptions opts{.dir = fresh_dir("autocompact")};
  opts.compact_garbage_ratio = 0.5;
  opts.compact_min_bytes = 1;
  KvStore kv(opts);
  for (int i = 0; i < 16; ++i) kv.put("hot", blob({i}));
  EXPECT_GE(kv.stats().compactions, 1u);
  EXPECT_EQ(kv.get("hot"), blob({15}));
  EXPECT_EQ(kv.size(), 1u);
}

// ----------------------------------------------------- state codecs

const falcon::KeyPair& codec_key() {
  static const falcon::KeyPair kp = [] {
    prng::ChaCha20Source rng(777);
    return falcon::keygen(falcon::FalconParams::for_degree(64), rng);
  }();
  return kp;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_cvec_bits_equal(const falcon::CVec& a, const falcon::CVec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(bits(a[i].real()), bits(b[i].real()));
    EXPECT_EQ(bits(a[i].imag()), bits(b[i].imag()));
  }
}

void expect_nodes_bits_equal(const falcon::FfNode& a,
                             const falcon::FfNode& b) {
  expect_cvec_bits_equal(a.l10, b.l10);
  EXPECT_EQ(bits(a.sigma0), bits(b.sigma0));
  EXPECT_EQ(bits(a.sigma1), bits(b.sigma1));
  EXPECT_EQ(bits(a.isq0), bits(b.isq0));
  EXPECT_EQ(bits(a.isq1), bits(b.isq1));
  ASSERT_EQ(a.child0 != nullptr, b.child0 != nullptr);
  ASSERT_EQ(a.child1 != nullptr, b.child1 != nullptr);
  if (a.child0) expect_nodes_bits_equal(*a.child0, *b.child0);
  if (a.child1) expect_nodes_bits_equal(*a.child1, *b.child1);
}

TEST(StateCodec, TreeRoundTripIsBitExact) {
  const falcon::KeyPair& kp = codec_key();
  const falcon::FalconTree built(kp);
  const auto frame = falcon::encode_tree(kp, built);

  const falcon::TreeRecord rec = falcon::decode_tree(frame);
  EXPECT_EQ(rec.f, kp.f);
  EXPECT_EQ(rec.g, kp.g);
  ASSERT_NE(rec.tree, nullptr);
  expect_cvec_bits_equal(rec.tree->b00(), built.b00());
  expect_cvec_bits_equal(rec.tree->b01(), built.b01());
  expect_cvec_bits_equal(rec.tree->b10(), built.b10());
  expect_cvec_bits_equal(rec.tree->b11(), built.b11());
  EXPECT_EQ(bits(rec.tree->min_leaf_sigma()), bits(built.min_leaf_sigma()));
  EXPECT_EQ(bits(rec.tree->max_leaf_sigma()), bits(built.max_leaf_sigma()));
  expect_nodes_bits_equal(rec.tree->root(), built.root());
}

TEST(StateCodec, TreeFrameRejectsCorruption) {
  const falcon::KeyPair& kp = codec_key();
  const falcon::FalconTree built(kp);
  auto frame = falcon::encode_tree(kp, built);
  frame[frame.size() / 2] ^= 0x40;
  EXPECT_THROW(falcon::decode_tree(frame), serial::SerialError);
  EXPECT_THROW(falcon::decode_tree(std::span(frame.data(), 10)),
               serial::SerialError);
}

TEST(StateCodec, NttKeyRoundTripIsExact) {
  falcon::NttKeyRecord rec;
  rec.params = falcon::FalconParams::for_degree(64);
  const std::size_t n = rec.params.n;
  for (std::size_t i = 0; i < n; ++i) {
    rec.h.push_back(static_cast<std::uint32_t>((i * 2654435761u) % 12289));
    rec.h_ntt.push_back(static_cast<std::uint32_t>((i * 97 + 5) % 12289));
    rec.h_ntt_shoup.push_back(static_cast<std::uint32_t>(i * 1234567u));
  }
  const auto frame = falcon::encode_ntt_key(rec);
  const falcon::NttKeyRecord out = falcon::decode_ntt_key(frame);
  EXPECT_EQ(out.h, rec.h);
  EXPECT_EQ(out.h_ntt, rec.h_ntt);
  EXPECT_EQ(out.h_ntt_shoup, rec.h_ntt_shoup);
  EXPECT_EQ(out.params.n, rec.params.n);
  EXPECT_EQ(out.params.bound_sq(), rec.params.bound_sq());

  auto bad = frame;
  bad[bad.size() - 3] ^= 0x01;
  EXPECT_THROW(falcon::decode_ntt_key(bad), serial::SerialError);
}

TEST(StateCodec, FootprintsAreSane) {
  const falcon::KeyPair& kp = codec_key();
  const falcon::FalconTree tree(kp);
  // A degree-64 tree carries >= 4 * 64 basis coefficients alone.
  EXPECT_GT(falcon::tree_footprint_bytes(tree), 4 * 64 * sizeof(falcon::cplx));
  EXPECT_GT(falcon::ntt_key_footprint_bytes(64), 3 * 64 * 4u);
}

// ------------------------------------------- service warm-start paths

engine::SamplerRegistry& shared_registry() {
  static engine::SamplerRegistry reg({.cache_dir = "", .use_disk = false});
  return reg;
}

falcon::KeyPair keygen_for_seed(std::uint64_t seed) {
  prng::ChaCha20Source rng(seed);
  return falcon::keygen(falcon::FalconParams::for_degree(64), rng);
}

bool sigs_equal(const falcon::Signature& a, const falcon::Signature& b) {
  return a.nonce == b.nonce && a.s1 == b.s1;
}

TEST(ServiceWarmStart, SigningIsBitIdenticalUnderEvictionChurn) {
  const falcon::KeyPair kp_a = keygen_for_seed(101);
  const falcon::KeyPair kp_b = keygen_for_seed(202);
  KvStore kv({.dir = fresh_dir("sign-kv")});

  falcon::SigningOptions bounded_opts;
  bounded_opts.num_threads = 1;
  bounded_opts.root_seed = 99;
  bounded_opts.tree_cache.max_entries = 1;
  bounded_opts.key_state = &kv;
  falcon::SigningService bounded(shared_registry(), bounded_opts);

  falcon::SigningOptions legacy_opts;
  legacy_opts.num_threads = 1;
  legacy_opts.root_seed = 99;
  falcon::SigningService legacy(shared_registry(), legacy_opts);

  // A / B / A: the bounded service evicts A's tree for B's, then
  // warm-starts A's from the KvStore. Same worker streams, same messages
  // => the signatures must be bit-identical to the never-evicting service.
  const falcon::Signature a1 = bounded.sign(kp_a, "message-1");
  const falcon::Signature b1 = bounded.sign(kp_b, "message-2");
  const falcon::Signature a2 = bounded.sign(kp_a, "message-3");

  EXPECT_TRUE(sigs_equal(a1, legacy.sign(kp_a, "message-1")));
  EXPECT_TRUE(sigs_equal(b1, legacy.sign(kp_b, "message-2")));
  EXPECT_TRUE(sigs_equal(a2, legacy.sign(kp_a, "message-3")));

  const auto stats = bounded.tree_cache_stats();
  EXPECT_EQ(stats.misses, 3u);       // A built, B built, A re-entered
  EXPECT_EQ(stats.warm_starts, 1u);  // ... via the store, not a rebuild
  EXPECT_GE(stats.evictions, 2u);
  EXPECT_EQ(bounded.num_cached_trees(), 1u);

  // And they all verify.
  falcon::Verifier va(kp_a.h, kp_a.params);
  EXPECT_TRUE(va.verify("message-1", a1));
  EXPECT_TRUE(va.verify("message-3", a2));
  falcon::Verifier vb(kp_b.h, kp_b.params);
  EXPECT_TRUE(vb.verify("message-2", b1));
}

TEST(ServiceWarmStart, SigningWarmStartsAcrossProcessRestart) {
  const falcon::KeyPair kp = keygen_for_seed(303);
  const std::string dir = fresh_dir("sign-restart");
  falcon::Signature first;
  {
    KvStore kv({.dir = dir});
    falcon::SigningOptions opts;
    opts.num_threads = 1;
    opts.root_seed = 7;
    opts.key_state = &kv;
    falcon::SigningService svc(shared_registry(), opts);
    first = svc.sign(kp, "persisted");
    EXPECT_EQ(svc.tree_cache_stats().warm_starts, 0u);
  }
  {
    // "Restart": a fresh store over the same directory decodes the tree
    // instead of rebuilding it, and signs identically.
    KvStore kv({.dir = dir});
    falcon::SigningOptions opts;
    opts.num_threads = 1;
    opts.root_seed = 7;
    opts.key_state = &kv;
    falcon::SigningService svc(shared_registry(), opts);
    const falcon::Signature again = svc.sign(kp, "persisted");
    EXPECT_TRUE(sigs_equal(first, again));
    const auto stats = svc.tree_cache_stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.warm_starts, 1u);
  }
}

TEST(ServiceWarmStart, VerificationIsIdenticalUnderEvictionChurn) {
  const falcon::KeyPair kp_a = keygen_for_seed(404);
  const falcon::KeyPair kp_b = keygen_for_seed(505);
  falcon::SigningOptions sopts;
  sopts.num_threads = 1;
  falcon::SigningService signer(shared_registry(), sopts);
  const falcon::Signature sig_a = signer.sign(kp_a, "msg-a");
  const falcon::Signature sig_b = signer.sign(kp_b, "msg-b");

  KvStore kv({.dir = fresh_dir("verify-kv")});
  falcon::VerificationOptions vopts;
  vopts.num_threads = 1;
  vopts.key_cache.max_entries = 1;
  vopts.key_state = &kv;
  falcon::VerificationService svc(vopts);

  EXPECT_TRUE(svc.verify(kp_a.h, kp_a.params, "msg-a", sig_a));
  EXPECT_TRUE(svc.verify(kp_b.h, kp_b.params, "msg-b", sig_b));  // evicts A
  // A warm-starts from the store; accept/reject decisions unchanged.
  EXPECT_TRUE(svc.verify(kp_a.h, kp_a.params, "msg-a", sig_a));
  EXPECT_FALSE(svc.verify(kp_a.h, kp_a.params, "tampered", sig_a));

  const auto stats = svc.key_cache_stats();
  EXPECT_EQ(stats.warm_starts, 1u);
  EXPECT_GE(stats.evictions, 2u);
  EXPECT_EQ(svc.num_cached_keys(), 1u);
}

TEST(ServiceWarmStart, RegistryNetlistEvictsThenWarmStartsFromDiskFrame) {
  engine::SamplerRegistry reg({.cache_dir = fresh_dir("reg-netlist"),
                               .use_disk = true,
                               .netlist_cache = {.max_entries = 1}});
  engine::SamplerRegistry::Source src;
  const auto p48 = gauss::GaussianParams::sigma_2(48);
  const auto p64 = gauss::GaussianParams::sigma_2(64);

  reg.get(p48, {}, &src);
  EXPECT_EQ(src, engine::SamplerRegistry::Source::kSynthesized);
  reg.get(p64, {}, &src);  // evicts the p48 netlist
  EXPECT_EQ(src, engine::SamplerRegistry::Source::kSynthesized);
  reg.get(p48, {}, &src);  // back from its per-key disk frame
  EXPECT_EQ(src, engine::SamplerRegistry::Source::kDisk);

  const auto stats = reg.netlist_cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.warm_starts, 1u);
  EXPECT_GE(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ServiceWarmStart, RegistryRecipeEvictsThenWarmStartsFromDiskFrame) {
  engine::SamplerRegistry reg({.cache_dir = fresh_dir("reg-recipe"),
                               .use_disk = true,
                               .recipe_cache = {.max_entries = 1}});
  engine::SamplerRegistry::Source src;
  const auto first = reg.get_recipe(2.5, 0.0, gauss::kDefaultSmoothingEps,
                                    64, &src);
  EXPECT_EQ(src, engine::SamplerRegistry::Source::kSynthesized);
  reg.get_recipe(3.25, 0.5, gauss::kDefaultSmoothingEps, 64, &src);
  EXPECT_EQ(src, engine::SamplerRegistry::Source::kSynthesized);
  const auto again = reg.get_recipe(2.5, 0.0, gauss::kDefaultSmoothingEps,
                                    64, &src);
  EXPECT_EQ(src, engine::SamplerRegistry::Source::kDisk);
  EXPECT_EQ(again.k, first.k);
  EXPECT_EQ(bits(again.target_sigma), bits(first.target_sigma));
  EXPECT_EQ(bits(again.achieved_sigma), bits(first.achieved_sigma));
  EXPECT_EQ(again.shift_int, first.shift_int);
  EXPECT_EQ(reg.recipe_cache_stats().warm_starts, 1u);
}

}  // namespace
}  // namespace cgs::store
