// Verification: the exhaustive rejection matrix for Verifier and
// VerificationService (tampered s1, tampered message, wrong public key,
// norm exactly at / just over the bound, degree mismatch, zero-length
// message), batched-vs-scalar differential equality on 1k random
// signatures, NTT-domain key caching, and the shared per-degree
// NttContext registry.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "engine/registry.h"
#include "falcon/keygen.h"
#include "falcon/signing_service.h"
#include "falcon/verification_service.h"
#include "falcon/verify.h"
#include "prng/chacha20.h"

namespace cgs::falcon {
namespace {

engine::SamplerRegistry& registry() {
  static engine::SamplerRegistry reg({.cache_dir = "", .use_disk = false});
  return reg;
}

const KeyPair& key_a() {
  static const KeyPair kp = [] {
    prng::ChaCha20Source rng(31337);
    return keygen(FalconParams::for_degree(64), rng);
  }();
  return kp;
}

const KeyPair& key_b() {
  static const KeyPair kp = [] {
    prng::ChaCha20Source rng(555);
    return keygen(FalconParams::for_degree(64), rng);
  }();
  return kp;
}

SigningService& signer() {
  static SigningService svc(registry(), {.backend = engine::Backend::kWide,
                                         .num_threads = 2,
                                         .root_seed = 9,
                                         .precision = 64});
  return svc;
}

// ----------------------------------------------------- shared NTT context ---

TEST(SharedNtt, OneImmutableContextPerDegree) {
  const auto a = shared_ntt_context(64);
  const auto b = shared_ntt_context(64);
  const auto c = shared_ntt_context(128);
  EXPECT_EQ(a.get(), b.get());  // same degree -> the same instance
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(a->size(), 64u);
  EXPECT_EQ(c->size(), 128u);
}

// ------------------------------------------------------- rejection matrix ---

class RejectionMatrix : public ::testing::Test {
 protected:
  void SetUp() override {
    message_ = "rejection matrix message";
    sig_ = signer().sign(key_a(), message_);
  }

  // Every case is asserted against all three paths: the scalar Verifier,
  // the service's scalar verify, and a one-element verify_many — the
  // decision must be identical everywhere.
  void expect_all(bool want, std::string_view message, const Signature& sig,
                  const KeyPair& kp) {
    const Verifier scalar(kp.h, kp.params);
    EXPECT_EQ(scalar.verify(message, sig), want);
    VerificationService svc({.num_threads = 1});
    EXPECT_EQ(svc.verify(kp.h, kp.params, message, sig), want);
    const std::string_view messages[] = {message};
    const Signature sigs[] = {sig};
    const auto verdicts = svc.verify_many(kp.h, kp.params, messages, sigs);
    ASSERT_EQ(verdicts.size(), 1u);
    EXPECT_EQ(verdicts[0] != 0, want);
  }

  std::string message_;
  Signature sig_;
};

TEST_F(RejectionMatrix, GenuineSignatureAccepted) {
  expect_all(true, message_, sig_, key_a());
}

TEST_F(RejectionMatrix, TamperedS1Rejected) {
  for (const std::size_t i : {std::size_t{0}, sig_.s1.size() / 2,
                              sig_.s1.size() - 1}) {
    Signature bent = sig_;
    bent.s1[i] += 1;
    expect_all(false, message_, bent, key_a());
  }
}

TEST_F(RejectionMatrix, TamperedMessageRejected) {
  expect_all(false, std::string(message_) + "!", sig_, key_a());
  expect_all(false, "rejection matrix messagf", sig_, key_a());
  expect_all(false, "", sig_, key_a());
}

TEST_F(RejectionMatrix, TamperedNonceRejected) {
  Signature bent = sig_;
  bent.nonce[7] ^= 1;
  expect_all(false, message_, bent, key_a());
}

TEST_F(RejectionMatrix, WrongPublicKeyRejected) {
  expect_all(false, message_, sig_, key_b());
}

TEST_F(RejectionMatrix, DegreeMismatchRejected) {
  Signature short_sig = sig_;
  short_sig.s1.resize(sig_.s1.size() / 2);
  expect_all(false, message_, short_sig, key_a());
  Signature long_sig = sig_;
  long_sig.s1.resize(sig_.s1.size() * 2, 0);
  expect_all(false, message_, long_sig, key_a());
}

TEST_F(RejectionMatrix, ZeroLengthMessageSignsAndVerifies) {
  const Signature sig = signer().sign(key_a(), "");
  expect_all(true, "", sig, key_a());
  expect_all(false, "x", sig, key_a());
}

TEST_F(RejectionMatrix, NormExactlyAtBoundAcceptedJustOverRejected) {
  // Recompute this signature's actual squared norm, then pin the params'
  // bound exactly at it (accept: the check is <=) and one below it
  // (reject) — the boundary arithmetic, not a statistical accident.
  const std::size_t n = key_a().params.n;
  const auto ntt = shared_ntt_context(n);
  const auto c = hash_to_point(sig_.nonce, message_, n);
  const auto s1h = ntt->multiply(to_mod_q_poly(sig_.s1), key_a().h);
  IPoly s0(n);
  for (std::size_t i = 0; i < n; ++i)
    s0[i] = center_mod_q((c[i] + kQ - s1h[i]) % kQ);
  const std::int64_t norm = norm_sq_pair(s0, sig_.s1);
  ASSERT_GT(norm, 0);

  KeyPair at = key_a();
  at.params.norm_bound_sq = norm;
  expect_all(true, message_, sig_, at);

  KeyPair over = key_a();
  over.params.norm_bound_sq = norm - 1;
  expect_all(false, message_, sig_, over);
}

// ------------------------------------------- batched vs scalar differential ---

TEST(VerifyDifferential, BatchedBitForBitEqualsScalarOn1kSignatures) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::string> storage;
  storage.reserve(kCount);
  for (std::size_t i = 0; i < kCount; ++i)
    storage.push_back("differential message " + std::to_string(i));
  std::vector<std::string_view> messages(storage.begin(), storage.end());
  std::vector<Signature> sigs = signer().sign_many(key_a(), messages);

  // Tamper a deterministic quarter of them (rotating tamper kind) so the
  // differential covers both verdicts.
  for (std::size_t i = 0; i < kCount; i += 4) {
    switch ((i / 4) % 3) {
      case 0: sigs[i].s1[i % sigs[i].s1.size()] += 1; break;
      case 1: storage[i] += " (tampered)"; break;
      default: sigs[i].nonce[i % sigs[i].nonce.size()] ^= 0x80; break;
    }
    messages[i] = storage[i];
  }

  const Verifier scalar(key_a().h, key_a().params);
  VerificationService svc({.num_threads = 3});
  const auto batched =
      svc.verify_many(key_a().h, key_a().params, messages, sigs);
  ASSERT_EQ(batched.size(), kCount);

  std::size_t accepted = 0;
  for (std::size_t i = 0; i < kCount; ++i) {
    const bool want = scalar.verify(messages[i], sigs[i]);
    EXPECT_EQ(batched[i] != 0, want) << "index " << i;
    EXPECT_EQ(svc.verify(key_a().h, key_a().params, messages[i], sigs[i]),
              want)
        << "index " << i;
    accepted += want ? 1 : 0;
  }
  // Untampered ones all verify; tampered ones all fail.
  EXPECT_EQ(accepted, kCount - (kCount + 3) / 4);

  const VerifyStats stats = svc.stats();
  EXPECT_EQ(stats.checked, 2 * kCount);
  EXPECT_EQ(stats.accepted, 2 * accepted);
  EXPECT_EQ(stats.batches, 1u);
}

// ------------------------------------------------------------- key caching ---

TEST(VerificationCache, NttDomainKeysCachedPerFingerprint) {
  VerificationService svc({.num_threads = 1});
  EXPECT_EQ(svc.num_cached_keys(), 0u);
  const Signature sig = signer().sign(key_a(), "cache probe");
  EXPECT_TRUE(svc.verify(key_a().h, key_a().params, "cache probe", sig));
  EXPECT_EQ(svc.num_cached_keys(), 1u);
  EXPECT_TRUE(svc.verify(key_a().h, key_a().params, "cache probe", sig));
  EXPECT_EQ(svc.num_cached_keys(), 1u);  // same key, same entry
  EXPECT_FALSE(svc.verify(key_b().h, key_b().params, "cache probe", sig));
  EXPECT_EQ(svc.num_cached_keys(), 2u);

  // Same h under a different bound is a distinct verification identity.
  KeyPair tight = key_a();
  tight.params.norm_bound_sq = 1;
  EXPECT_FALSE(svc.verify(tight.h, tight.params, "cache probe", sig));
  EXPECT_EQ(svc.num_cached_keys(), 3u);

  EXPECT_NE(public_key_fingerprint(key_a().h, key_a().params),
            public_key_fingerprint(tight.h, tight.params));
  EXPECT_NE(public_key_fingerprint(key_a().h, key_a().params),
            public_key_fingerprint(key_b().h, key_b().params));
}

}  // namespace
}  // namespace cgs::falcon
