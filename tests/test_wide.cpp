// 256-lane wide sampler: agreement with the 64-lane sampler when fed the
// same word stream, distribution quality, validity masks.

#include <gtest/gtest.h>

#include "ct/bitsliced_sampler.h"
#include "ct/wide_sampler.h"
#include "prng/chacha20.h"
#include "stats/chisquare.h"

namespace cgs::ct {
namespace {

TEST(WideSampler, LaneGroupsMatch64LaneSampler) {
  // The wide sampler draws 4 words per input bit (lane groups 0..3). The
  // 64-lane sampler fed the identical stream, 4 batches with stride,
  // produces the lane-group-0 samples on its first batch if we feed every
  // 4th word — easier: run wide with a recorded stream, then replay the
  // stream de-interleaved through the narrow sampler per group.
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(64));
  const int n = m.precision();

  prng::ChaCha20Source rng(12);
  std::vector<std::uint64_t> stream;
  for (int i = 0; i < 4 * n; ++i) stream.push_back(rng.next_word());

  class Replay final : public RandomBitSource {
   public:
    explicit Replay(std::vector<std::uint64_t> w) : w_(std::move(w)) {}
    std::uint64_t next_word() override { return w_[pos_++ % w_.size()]; }

   private:
    std::vector<std::uint64_t> w_;
    std::size_t pos_ = 0;
  };

  WideBitslicedSampler wide(synthesize(m, {}));
  Replay wide_src(stream);
  std::uint32_t wide_out[256];
  std::uint64_t wide_valid[4];
  wide.sample_magnitudes(wide_src, wide_out, wide_valid);

  for (int group = 0; group < 4; ++group) {
    std::vector<std::uint64_t> group_stream;
    for (int k = 0; k < n; ++k)
      group_stream.push_back(stream[static_cast<std::size_t>(4 * k + group)]);
    BitslicedSampler narrow(synthesize(m, {}));
    Replay narrow_src(group_stream);
    std::uint32_t narrow_out[64];
    const std::uint64_t narrow_valid =
        narrow.sample_magnitudes(narrow_src, narrow_out);
    EXPECT_EQ(narrow_valid, wide_valid[group]) << group;
    for (int lane = 0; lane < 64; ++lane)
      EXPECT_EQ(narrow_out[lane], wide_out[64 * group + lane])
          << group << ":" << lane;
  }
}

TEST(WideSampler, DistributionIsCorrect) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(64));
  WideBitslicedSampler s(synthesize(m, {}));
  prng::ChaCha20Source rng(13);
  stats::Histogram h;
  std::int32_t out[256];
  std::uint64_t valid[4];
  for (int it = 0; it < 2000; ++it) {
    s.sample_batch(rng, out, valid);
    for (int group = 0; group < 4; ++group)
      for (int lane = 0; lane < 64; ++lane)
        if ((valid[group] >> lane) & 1u) h.add(out[64 * group + lane]);
  }
  const auto res = stats::chi_square_signed(h, m);
  EXPECT_GT(res.p_value, 1e-6) << "chi2=" << res.statistic;
}

TEST(WideSampler, ValidMaskNearlyFullAtHighPrecision) {
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  WideBitslicedSampler s(synthesize(m, {}));
  prng::ChaCha20Source rng(14);
  std::uint32_t out[256];
  std::uint64_t valid[4];
  for (int it = 0; it < 50; ++it) {
    s.sample_magnitudes(rng, out, valid);
    for (int g = 0; g < 4; ++g) EXPECT_EQ(valid[g], ~std::uint64_t(0));
  }
}

}  // namespace
}  // namespace cgs::ct
