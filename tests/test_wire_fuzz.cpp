// Structure-aware wire-protocol fuzzing: seeded-PRNG mutations (bit
// flips, truncations, length-field lies, trailing garbage, tag confusion,
// duplicated and torn frames) over every wire frame type, at both the
// decode layer (frame bytes -> typed frame) and the stream layer
// (read_message over a pipe). The contract under test: any corrupted
// input produces a typed serial::SerialError — never a crash, an
// over-read (ASan/UBSan CI job), or a silently accepted corrupted
// payload. Deterministic: every mutation derives from one seed.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/overload.h"
#include "prng/splitmix.h"
#include "serial/serial.h"
#include "serve/wire.h"

namespace cgs::serve {
namespace {

// A valid encoded message (with length prefix) plus its expected tag.
struct Sample {
  serial::TypeTag tag;
  std::vector<std::uint8_t> encoded;
};

falcon::Signature synthetic_signature(prng::SplitMix64Source& rng,
                                      std::size_t n) {
  falcon::Signature sig;
  for (auto& b : sig.nonce) b = static_cast<std::uint8_t>(rng.next_word());
  sig.s1.resize(n);
  for (auto& v : sig.s1)
    v = static_cast<std::int32_t>(rng.next_word() % 801) - 400;
  return sig;
}

std::vector<Sample> make_samples(prng::SplitMix64Source& rng) {
  std::vector<Sample> samples;

  SignRequestFrame sign_req;
  sign_req.request_id = 42;
  sign_req.key_id = 0xfeedbeefcafef00dull;
  sign_req.message = "fuzz me gently";
  samples.push_back({serial::TypeTag::kSignRequest, encode(sign_req)});

  const falcon::Signature sig = synthetic_signature(rng, 64);
  samples.push_back({serial::TypeTag::kSignResponse,
                     encode(SignResponseFrame::success(43, sig))});
  samples.push_back({serial::TypeTag::kSignResponse,
                     encode(SignResponseFrame::failure(44, "queue-full"))});

  // Trace-carrying variant: the optional trailing context block (the
  // wire-revision corner — old frames have no block, these do).
  SignRequestFrame traced_sign = sign_req;
  traced_sign.request_id = 142;
  traced_sign.trace_id = 0x7ace1d7ace1d7aceull;
  samples.push_back({serial::TypeTag::kSignRequest, encode(traced_sign)});
  // Deadline-carrying variant: forces the v2 context block (trace +
  // deadline), the widest trailing-block shape a mutation can tear.
  SignRequestFrame deadline_sign = sign_req;
  deadline_sign.request_id = 242;
  deadline_sign.deadline_us = 15'000;
  samples.push_back({serial::TypeTag::kSignRequest, encode(deadline_sign)});

  samples.push_back(
      {serial::TypeTag::kVerifyRequest,
       encode(VerifyRequestFrame::make(45, 7, "verify this", sig))});
  VerifyRequestFrame traced_verify =
      VerifyRequestFrame::make(145, 7, "verify this too", sig);
  traced_verify.trace_id = 0xf00dd00ff00dd00full;
  samples.push_back({serial::TypeTag::kVerifyRequest, encode(traced_verify)});
  VerifyRequestFrame deadline_verify =
      VerifyRequestFrame::make(245, 7, "verify on a budget", sig);
  deadline_verify.trace_id = 0x7ace000000000245ull;
  deadline_verify.deadline_us = 2'500;
  samples.push_back(
      {serial::TypeTag::kVerifyRequest, encode(deadline_verify)});
  samples.push_back({serial::TypeTag::kVerifyResponse,
                     encode(VerifyResponseFrame::verdict(46, true))});
  samples.push_back({serial::TypeTag::kVerifyResponse,
                     encode(VerifyResponseFrame::failure(47, "shutdown"))});

  KeygenRequestFrame kg_req;
  kg_req.request_id = 48;
  kg_req.degree = 64;
  kg_req.seed = 0x5eed;
  samples.push_back({serial::TypeTag::kKeygenRequest, encode(kg_req)});
  KeygenRequestFrame traced_kg = kg_req;
  traced_kg.request_id = 148;
  traced_kg.trace_id = 0xbead5eedbead5eedull;
  samples.push_back({serial::TypeTag::kKeygenRequest, encode(traced_kg)});
  KeygenRequestFrame deadline_kg = kg_req;
  deadline_kg.request_id = 248;
  deadline_kg.deadline_us = 500'000;
  samples.push_back({serial::TypeTag::kKeygenRequest, encode(deadline_kg)});

  std::vector<std::uint32_t> h(64);
  for (auto& v : h)
    v = static_cast<std::uint32_t>(rng.next_word() % falcon::kQ);
  samples.push_back({serial::TypeTag::kKeygenResponse,
                     encode(KeygenResponseFrame::success(49, 0xabcd, h, 64))});
  samples.push_back({serial::TypeTag::kKeygenResponse,
                     encode(KeygenResponseFrame::failure(50, "solver died"))});

  StatsRequestFrame stats_req;
  stats_req.request_id = 51;
  stats_req.format = StatsFormat::kJson;
  samples.push_back({serial::TypeTag::kStatsRequest, encode(stats_req)});

  samples.push_back(
      {serial::TypeTag::kStatsResponse,
       encode(StatsResponseFrame::success(
           52, StatsFormat::kPrometheus,
           "# TYPE cgs_events_total counter\ncgs_events_total 3\n"))});
  samples.push_back({serial::TypeTag::kStatsResponse,
                     encode(StatsResponseFrame::failure(53, "draining"))});

  // Health surface: the request is near-minimal (one u64 — truncations
  // bite fast), the response carries a variable component list whose
  // count field is a favorite target for length lies.
  HealthRequestFrame health_req;
  health_req.request_id = 54;
  samples.push_back({serial::TypeTag::kHealthRequest, encode(health_req)});

  std::vector<HealthComponentFrame> components;
  components.push_back({"sign_queue", true, 0.25, "worst lane depth"});
  components.push_back({"net_loop_lag", false, 250000.0, "reactor 3 stalled"});
  samples.push_back({serial::TypeTag::kHealthResponse,
                     encode(HealthResponseFrame::success(55, components))});
  samples.push_back({serial::TypeTag::kHealthResponse,
                     encode(HealthResponseFrame::failure(56, "draining"))});

  // The transport's typed shed answer (net/overload.h) shares the serial
  // frame format and the clients' decode path — fuzz it with the rest.
  net::OverloadedFrame shed;
  shed.retry_after_ms = 250;
  shed.reason = "owed-responses cap";
  samples.push_back({serial::TypeTag::kOverloaded, net::encode_overloaded(shed)});
  // Admission sheds name the request they answer via the optional
  // trailing id — another trailing-field shape for mutations to chew on.
  net::OverloadedFrame named_shed;
  named_shed.retry_after_ms = 8;
  named_shed.reason = "tenant-full";
  named_shed.request_id = 0x1d1d1d1d1d1d1d1dull;
  samples.push_back(
      {serial::TypeTag::kOverloaded, net::encode_overloaded(named_shed)});

  return samples;
}

// Decode the serial frame (no length prefix) with the decoder matching
// `tag`; for successfully decoded signature-bearing frames also exercise
// decompression.
void decode_as(serial::TypeTag tag, std::span<const std::uint8_t> frame) {
  switch (tag) {
    case serial::TypeTag::kSignRequest: decode_sign_request(frame); break;
    case serial::TypeTag::kSignResponse: {
      const SignResponseFrame resp = decode_sign_response(frame);
      if (resp.ok) resp.to_signature();
      break;
    }
    case serial::TypeTag::kVerifyRequest:
      decode_verify_request(frame).to_signature();
      break;
    case serial::TypeTag::kVerifyResponse: decode_verify_response(frame); break;
    case serial::TypeTag::kKeygenRequest: decode_keygen_request(frame); break;
    case serial::TypeTag::kKeygenResponse: decode_keygen_response(frame); break;
    case serial::TypeTag::kStatsRequest: decode_stats_request(frame); break;
    case serial::TypeTag::kStatsResponse: decode_stats_response(frame); break;
    case serial::TypeTag::kHealthRequest: decode_health_request(frame); break;
    case serial::TypeTag::kHealthResponse:
      decode_health_response(frame);
      break;
    case serial::TypeTag::kOverloaded: net::decode_overloaded(frame); break;
    default:
      // Cache-layer tags (netlist, sampler, ...) are valid serial frames
      // but not wire messages; a mutation steering a frame there gets the
      // same typed rejection a server's router would produce.
      throw serial::SerialError("no wire decoder for this tag");
  }
}

// --------------------------------------------------------- decode layer ---

TEST(WireFuzz, EveryCorruptedFrameYieldsTypedErrorNeverAcceptance) {
  prng::SplitMix64Source rng(0xF022ED1);
  const std::vector<Sample> samples = make_samples(rng);

  // Sanity: the unmutated frames all decode.
  for (const Sample& s : samples) {
    const std::span<const std::uint8_t> frame(s.encoded.data() + 4,
                                              s.encoded.size() - 4);
    EXPECT_NO_THROW(decode_as(s.tag, frame));
  }

  constexpr int kIterations = 12000;
  int mutated_frames = 0, rejected = 0, unchanged_ok = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    const Sample& base = samples[rng.next_word() % samples.size()];
    // The serial frame as the stream layer would deliver it.
    std::vector<std::uint8_t> frame(base.encoded.begin() + 4,
                                    base.encoded.end());
    const std::vector<std::uint8_t> original = frame;

    switch (rng.next_word() % 6) {
      case 0: {  // single bit flip
        const std::size_t bit = rng.next_word() % (8 * frame.size());
        frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        break;
      }
      case 1: {  // burst of up to 8 bit flips
        const int flips = 1 + static_cast<int>(rng.next_word() % 8);
        for (int f = 0; f < flips; ++f) {
          const std::size_t bit = rng.next_word() % (8 * frame.size());
          frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
        break;
      }
      case 2:  // truncation (possibly to empty)
        frame.resize(rng.next_word() % frame.size());
        break;
      case 3: {  // length-field lie inside the serial header (payload size)
        if (frame.size() >= 20) {
          const std::uint64_t lie = rng.next_word();
          std::memcpy(frame.data() + 12, &lie, 8);
        }
        break;
      }
      case 4: {  // trailing garbage (a torn next frame glued on)
        const int extra = 1 + static_cast<int>(rng.next_word() % 32);
        for (int e = 0; e < extra; ++e)
          frame.push_back(static_cast<std::uint8_t>(rng.next_word()));
        break;
      }
      default: {  // random byte splice
        const std::size_t at = rng.next_word() % frame.size();
        const std::size_t len =
            std::min(frame.size() - at,
                     1 + static_cast<std::size_t>(rng.next_word() % 16));
        for (std::size_t i = 0; i < len; ++i)
          frame[at + i] = static_cast<std::uint8_t>(rng.next_word());
        break;
      }
    }

    // Tag confusion rides on top: a third of the time, decode with a
    // deliberately wrong decoder.
    serial::TypeTag decoder_tag = base.tag;
    if (rng.next_word() % 3 == 0)
      decoder_tag = samples[rng.next_word() % samples.size()].tag;

    ++mutated_frames;
    const bool changed = frame != original || decoder_tag != base.tag;
    try {
      decode_as(decoder_tag, frame);
      // Reached only when decode succeeded: that is acceptance — it must
      // mean the mutation was an identity (or an alias decoder for the
      // same tag value).
      EXPECT_FALSE(changed)
          << "iteration " << iter << ": corrupted frame was accepted";
      ++unchanged_ok;
    } catch (const serial::SerialError&) {
      ++rejected;  // the typed rejection every corruption must produce
    }
    // Any other exception type escapes and fails the test; memory errors
    // are the sanitizer job's to catch.
  }

  EXPECT_GE(mutated_frames, 10000);
  EXPECT_GT(rejected, mutated_frames / 2);  // mutations rarely miss
  std::printf("fuzzed %d frames: %d rejected, %d identity-mutations ok\n",
              mutated_frames, rejected, unchanged_ok);
}

// --------------------------------------------------------- stream layer ---

TEST(WireFuzz, MutatedByteStreamsNeverCrashOrOverread) {
  prng::SplitMix64Source rng(0x57AE4);
  const std::vector<Sample> samples = make_samples(rng);

  constexpr int kStreams = 150;
  constexpr int kMessagesPerStream = 30;
  int mutated_messages = 0;
  std::uint64_t frames_delivered = 0, typed_errors = 0;

  for (int s = 0; s < kStreams; ++s) {
    // Build a stream: mostly intact messages, some duplicated, some
    // mutated (bit flips / length-prefix lies), optionally torn at the
    // end — then push the bytes through a real pipe.
    std::vector<std::uint8_t> blob;
    for (int m = 0; m < kMessagesPerStream; ++m) {
      std::vector<std::uint8_t> msg =
          samples[rng.next_word() % samples.size()].encoded;
      const std::uint64_t kind = rng.next_word() % 8;
      if (kind == 0) {  // duplicate: same frame twice is two valid reads
        blob.insert(blob.end(), msg.begin(), msg.end());
      } else if (kind == 1) {  // bit flip anywhere (prefix included)
        const std::size_t bit = rng.next_word() % (8 * msg.size());
        msg[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        ++mutated_messages;
      } else if (kind == 2) {  // length-prefix lie
        const std::uint32_t lie = static_cast<std::uint32_t>(rng.next_word());
        std::memcpy(msg.data(), &lie, 4);
        ++mutated_messages;
      }
      blob.insert(blob.end(), msg.begin(), msg.end());
    }
    if (rng.next_word() % 2 == 0) {  // tear the stream mid-message
      std::vector<std::uint8_t> torn =
          samples[rng.next_word() % samples.size()].encoded;
      const std::size_t keep = 1 + rng.next_word() % (torn.size() - 1);
      blob.insert(blob.end(), torn.begin(),
                  torn.begin() + static_cast<std::ptrdiff_t>(keep));
      ++mutated_messages;
    }

    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_LT(blob.size(), 60000u);  // stays under the pipe buffer: the
                                     // write below cannot block
    ASSERT_EQ(::write(fds[1], blob.data(), blob.size()),
              static_cast<ssize_t>(blob.size()));
    ::close(fds[1]);

    try {
      while (auto frame = read_message(fds[0])) {
        ++frames_delivered;
        try {
          decode_as(serial::peek_tag(*frame), *frame);
        } catch (const serial::SerialError&) {
          ++typed_errors;  // stream stays readable after a bad frame
        }
      }
    } catch (const serial::SerialError&) {
      ++typed_errors;  // torn prefix/body or oversized length: stream dead
    }
    ::close(fds[0]);
  }

  EXPECT_GT(mutated_messages, 1000);
  EXPECT_GT(frames_delivered, 0u);
  EXPECT_GT(typed_errors, 0u);
  std::printf("streamed %d mutated messages: %llu frames delivered, %llu "
              "typed errors\n",
              mutated_messages,
              static_cast<unsigned long long>(frames_delivered),
              static_cast<unsigned long long>(typed_errors));
}

}  // namespace
}  // namespace cgs::serve
